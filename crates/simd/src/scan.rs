//! Vectorized selective-scan forward recurrence.
//!
//! The scan's channel lanes are mutually independent, so eight adjacent
//! channels ride in one vector: each lane's recurrence keeps exactly the
//! per-lane expression order of the scalar loop. The scalar backend is
//! therefore **bitwise identical** to the original per-lane code; the
//! SIMD backend fuses the multiply–adds and uses the polynomial
//! [`Simd8::exp`], so it is tolerance-class (but deterministic for a
//! fixed level, at any `PEB_THREADS`).
//!
//! Layout contract (`[L, C]` row-major activations, as in `peb-mamba`):
//!
//! * `u`/`delta` rows hold channels contiguously, so the group
//!   `ci0..ci0+8` loads directly;
//! * `a` is pre-packed per group by [`pack_a_lanes8`] into `[N][8]`
//!   interleaved order;
//! * the running state `h` is `[N][8]` interleaved;
//! * `y` and the optional state trajectory are written through
//!   [`peb_par::UnsafeSlice`] because a lane group owns strided
//!   positions of the shared output.

use peb_par::UnsafeSlice;

use crate::bf16::{bf16_to_f32, f32_to_bf16, Bf16x8, ScalarBf16x8};
use crate::{simd_active, ScalarX8, Simd8};

/// Packs rows `ci0..ci0+8` of the `[C, N]` state matrix into interleaved
/// `[N][8]` order: `out[ni·8 + j] = a[(ci0+j)·n + ni]`.
pub fn pack_a_lanes8(a: &[f32], n: usize, ci0: usize, out: &mut Vec<f32>) {
    out.clear();
    for ni in 0..n {
        for j in 0..8 {
            out.push(a[(ci0 + j) * n + ni]);
        }
    }
}

/// Runs the forward recurrence for the eight channel lanes `ci0..ci0+8`.
///
/// Per time step `t` and state index `ni`, each lane computes the scalar
/// recurrence
///
/// ```text
/// e  = exp(Δ_t · a[ni]);  h[ni] = e·h[ni] + (Δ_t·u_t)·b_t[ni]
/// y_t = Σ_ni c_t[ni]·h[ni] + d·u_t
/// ```
///
/// `h` (length `n·8`, `[N][8]` interleaved) carries the state and must be
/// zeroed by the caller before the first time step. When `h_traj` is
/// `Some`, the state after each step is transposed into the trajectory's
/// native `[(t·ch + ci)·n + ni]` layout.
///
/// # Safety
///
/// The caller must own columns `ci0..ci0+8` of `y` (positions `t·ch+ci`)
/// and the corresponding `h_traj` rows exclusively — the standard
/// `UnsafeSlice` disjoint-writes contract of the lane-parallel scan.
/// Requires `ci0 + 8 <= ch`.
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8(
    u: &[f32],
    delta: &[f32],
    a_pack: &[f32],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [f32],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    debug_assert!(ci0 + 8 <= ch);
    debug_assert!(h.len() >= n * 8 && a_pack.len() >= n * 8 && skip8.len() >= 8);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected; the
        // aliasing contract is the caller's.
        unsafe { scan_fwd_avx2(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0) };
        return;
    }
    // SAFETY: aliasing contract is the caller's.
    unsafe {
        scan_fwd_generic::<ScalarX8>(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0)
    }
}

/// Forced scalar-backend variant of [`scan_forward_lanes8`].
///
/// # Safety
///
/// Same contract as [`scan_forward_lanes8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8_scalar(
    u: &[f32],
    delta: &[f32],
    a_pack: &[f32],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [f32],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        scan_fwd_generic::<ScalarX8>(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0)
    }
}

/// Forced SIMD-backend variant of [`scan_forward_lanes8`]; returns
/// `false` (no-op) without AVX2+FMA.
///
/// # Safety
///
/// Same contract as [`scan_forward_lanes8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8_simd(
    u: &[f32],
    delta: &[f32],
    a_pack: &[f32],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [f32],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`; aliasing is the caller's.
        unsafe { scan_fwd_avx2(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0) };
        return true;
    }
    let _ = (u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn scan_fwd_avx2(
    u: &[f32],
    delta: &[f32],
    a_pack: &[f32],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [f32],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        scan_fwd_generic::<crate::AvxX8>(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0)
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn scan_fwd_generic<V: Simd8>(
    u: &[f32],
    delta: &[f32],
    a_pack: &[f32],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [f32],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    let skipv = V::load(skip8);
    for t in 0..l {
        let dtv = V::load(&delta[t * ch + ci0..]);
        let utv = V::load(&u[t * ch + ci0..]);
        let dtu = dtv.mul(utv);
        let mut acc = V::zero();
        for ni in 0..n {
            let av = V::load(&a_pack[ni * 8..]);
            let e = dtv.mul(av).exp();
            let hs = &mut h[ni * 8..ni * 8 + 8];
            // h = e·h + (Δ·u)·b — unfused on the scalar backend, matching
            // `e * *hv + dtu * bd[..]` bit for bit.
            let hv = e.mul_add(V::load(hs), dtu.mul(V::splat(b[t * n + ni])));
            hv.store(hs);
            acc = V::splat(c[t * n + ni]).mul_add(hv, acc);
        }
        let yv = skipv.mul_add(utv, acc);
        // SAFETY: lane group owns y positions t·ch+ci0..+8 (caller
        // contract).
        yv.store(unsafe { y.slice_mut(t * ch + ci0..t * ch + ci0 + 8) });
        if let Some(traj) = h_traj {
            // The group's trajectory rows for step t are the contiguous
            // block [(t·ch+ci0)·n, (t·ch+ci0+8)·n): transpose [N][8] → 8
            // rows of n.
            // SAFETY: caller contract, as above.
            let dst = unsafe { traj.slice_mut((t * ch + ci0) * n..(t * ch + ci0 + 8) * n) };
            for (ni, hs) in h.chunks_exact(8).enumerate().take(n) {
                for (j, v) in hs.iter().enumerate() {
                    dst[j * n + ni] = *v;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// bf16-storage scan
// ---------------------------------------------------------------------------

/// Packs rows `ci0..ci0+8` of the `[C, N]` state matrix into interleaved
/// `[N][8]` **bf16** order (narrowed once with round-to-nearest-even).
pub fn pack_a_lanes8_bf16(a: &[f32], n: usize, ci0: usize, out: &mut Vec<u16>) {
    out.clear();
    for ni in 0..n {
        for j in 0..8 {
            out.push(f32_to_bf16(a[(ci0 + j) * n + ni]));
        }
    }
}

/// bf16-storage variant of [`scan_forward_lanes8`]: the running state
/// `h` and the packed `a` live in bf16 (`u16`), halving the hot per-lane
/// state footprint; every arithmetic step widens to f32, computes
/// exactly as the f32 kernel does, and narrows `h` back with
/// round-to-nearest-even. The recurrence therefore rounds `h` once per
/// time step — error compounds geometrically with the contraction
/// factor `e = exp(Δ·a) < 1`, and the property suite pins the resulting
/// budget. `y` stays full f32.
///
/// # Safety
///
/// Same aliasing contract as [`scan_forward_lanes8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8_bf16(
    u: &[f32],
    delta: &[f32],
    a_pack: &[u16],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [u16],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    debug_assert!(ci0 + 8 <= ch);
    debug_assert!(h.len() >= n * 8 && a_pack.len() >= n * 8 && skip8.len() >= 8);
    crate::note_prec_dispatch();
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected; the
        // aliasing contract is the caller's.
        unsafe { scan_fwd_bf16_avx2(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0) };
        return;
    }
    // SAFETY: aliasing contract is the caller's.
    unsafe {
        scan_fwd_bf16_generic::<ScalarBf16x8>(
            u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0,
        )
    }
}

/// Forced scalar-backend variant of [`scan_forward_lanes8_bf16`].
///
/// # Safety
///
/// Same contract as [`scan_forward_lanes8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8_bf16_scalar(
    u: &[f32],
    delta: &[f32],
    a_pack: &[u16],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [u16],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        scan_fwd_bf16_generic::<ScalarBf16x8>(
            u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0,
        )
    }
}

/// Forced SIMD-backend variant of [`scan_forward_lanes8_bf16`]; returns
/// `false` (no-op) without AVX2+FMA.
///
/// # Safety
///
/// Same contract as [`scan_forward_lanes8`].
#[allow(clippy::too_many_arguments)]
pub unsafe fn scan_forward_lanes8_bf16_simd(
    u: &[f32],
    delta: &[f32],
    a_pack: &[u16],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [u16],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`; aliasing is the caller's.
        unsafe { scan_fwd_bf16_avx2(u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0) };
        return true;
    }
    let _ = (u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn scan_fwd_bf16_avx2(
    u: &[f32],
    delta: &[f32],
    a_pack: &[u16],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [u16],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    // SAFETY: forwarded caller contract.
    unsafe {
        scan_fwd_bf16_generic::<crate::bf16::AvxBf16x8>(
            u, delta, a_pack, b, c, skip8, h, y, h_traj, l, ch, n, ci0,
        )
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
unsafe fn scan_fwd_bf16_generic<B: Bf16x8>(
    u: &[f32],
    delta: &[f32],
    a_pack: &[u16],
    b: &[f32],
    c: &[f32],
    skip8: &[f32],
    h: &mut [u16],
    y: &UnsafeSlice<f32>,
    h_traj: Option<&UnsafeSlice<f32>>,
    l: usize,
    ch: usize,
    n: usize,
    ci0: usize,
) {
    let skipv = B::F::load(skip8);
    for t in 0..l {
        let dtv = B::F::load(&delta[t * ch + ci0..]);
        let utv = B::F::load(&u[t * ch + ci0..]);
        let dtu = dtv.mul(utv);
        let mut acc = B::F::zero();
        for ni in 0..n {
            let av = B::widen_load(&a_pack[ni * 8..]);
            let e = dtv.mul(av).exp();
            let hs = &mut h[ni * 8..ni * 8 + 8];
            let hv = e.mul_add(B::widen_load(hs), dtu.mul(B::F::splat(b[t * n + ni])));
            B::narrow_store(hv, hs);
            // The contribution uses the *stored* (narrowed) state so the
            // trajectory and the accumulation see the same values.
            acc = B::F::splat(c[t * n + ni]).mul_add(B::widen_load(hs), acc);
        }
        let yv = skipv.mul_add(utv, acc);
        // SAFETY: lane group owns y positions t·ch+ci0..+8 (caller
        // contract).
        yv.store(unsafe { y.slice_mut(t * ch + ci0..t * ch + ci0 + 8) });
        if let Some(traj) = h_traj {
            // SAFETY: caller contract, as above.
            let dst = unsafe { traj.slice_mut((t * ch + ci0) * n..(t * ch + ci0 + 8) * n) };
            for (ni, hs) in h.chunks_exact(8).enumerate().take(n) {
                for (j, v) in hs.iter().enumerate() {
                    dst[j * n + ni] = bf16_to_f32(*v);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The original per-lane scalar recurrence, as written in peb-mamba.
    #[allow(clippy::too_many_arguments)]
    fn reference(
        u: &[f32],
        delta: &[f32],
        a: &[f32],
        b: &[f32],
        c: &[f32],
        d: &[f32],
        l: usize,
        ch: usize,
        n: usize,
    ) -> (Vec<f32>, Vec<f32>) {
        let mut y = vec![0f32; l * ch];
        let mut traj = vec![0f32; l * ch * n];
        let mut h = vec![0f32; n];
        for ci in 0..ch {
            h.iter_mut().for_each(|v| *v = 0.0);
            for t in 0..l {
                let dt = delta[t * ch + ci];
                let ut = u[t * ch + ci];
                let dtu = dt * ut;
                let mut acc = 0f32;
                for (ni, hv) in h.iter_mut().enumerate() {
                    let e = (dt * a[ci * n + ni]).exp();
                    *hv = e * *hv + dtu * b[t * n + ni];
                    acc += c[t * n + ni] * *hv;
                }
                y[t * ch + ci] = acc + d[ci] * ut;
                traj[(t * ch + ci) * n..(t * ch + ci + 1) * n].copy_from_slice(&h);
            }
        }
        (y, traj)
    }

    fn pseudo(len: usize, salt: u32, lo: f32, hi: f32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                lo + (x as f32 / u32::MAX as f32) * (hi - lo)
            })
            .collect()
    }

    #[test]
    fn scalar_backend_matches_per_lane_loop_bitwise() {
        let (l, ch, n) = (11, 16, 5);
        let u = pseudo(l * ch, 1, -1.0, 1.0);
        let delta = pseudo(l * ch, 2, 0.05, 0.5);
        let a = pseudo(ch * n, 3, -1.5, -0.2);
        let b = pseudo(l * n, 4, -1.0, 1.0);
        let c = pseudo(l * n, 5, -1.0, 1.0);
        let d = pseudo(ch, 6, -1.0, 1.0);
        let (want_y, want_traj) = reference(&u, &delta, &a, &b, &c, &d, l, ch, n);

        let mut y = vec![0f32; l * ch];
        let mut traj = vec![0f32; l * ch * n];
        {
            let ys = UnsafeSlice::new(&mut y);
            let ts = UnsafeSlice::new(&mut traj);
            let mut apack = Vec::new();
            let mut h = vec![0f32; n * 8];
            for ci0 in (0..ch).step_by(8) {
                pack_a_lanes8(&a, n, ci0, &mut apack);
                h.iter_mut().for_each(|v| *v = 0.0);
                // SAFETY: single-threaded test; groups disjoint.
                unsafe {
                    scan_forward_lanes8_scalar(
                        &u,
                        &delta,
                        &apack,
                        &b,
                        &c,
                        &d[ci0..],
                        &mut h,
                        &ys,
                        Some(&ts),
                        l,
                        ch,
                        n,
                        ci0,
                    )
                };
            }
        }
        for (w, g) in want_y.iter().zip(&y) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
        for (w, g) in want_traj.iter().zip(&traj) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn bf16_scan_tracks_f32_within_budget() {
        // Δ·a < 0 keeps the recurrence contractive, so the per-step
        // bf16 rounding of h (≤ 2⁻⁸ relative) accumulates to a bounded
        // geometric series rather than growing with l. Gate y at 2% of
        // the output magnitude scale.
        let (l, ch, n) = (48, 8, 6);
        let u = pseudo(l * ch, 21, -1.0, 1.0);
        let delta = pseudo(l * ch, 22, 0.05, 0.5);
        let a = pseudo(ch * n, 23, -1.5, -0.2);
        let b = pseudo(l * n, 24, -1.0, 1.0);
        let c = pseudo(l * n, 25, -1.0, 1.0);
        let d = pseudo(ch, 26, -1.0, 1.0);
        let (want_y, _) = reference(&u, &delta, &a, &b, &c, &d, l, ch, n);
        let scale = want_y.iter().fold(0f32, |m, v| m.max(v.abs()));

        let run = |simd: bool| -> Option<Vec<f32>> {
            let mut y = vec![0f32; l * ch];
            {
                let ys = UnsafeSlice::new(&mut y);
                let mut apack = Vec::new();
                pack_a_lanes8_bf16(&a, n, 0, &mut apack);
                let mut h = vec![0u16; n * 8];
                // SAFETY: single-threaded test; one group owns all of y.
                unsafe {
                    if simd {
                        if !scan_forward_lanes8_bf16_simd(
                            &u, &delta, &apack, &b, &c, &d, &mut h, &ys, None, l, ch, n, 0,
                        ) {
                            return None;
                        }
                    } else {
                        scan_forward_lanes8_bf16_scalar(
                            &u, &delta, &apack, &b, &c, &d, &mut h, &ys, None, l, ch, n, 0,
                        );
                    }
                }
            }
            Some(y)
        };

        let scalar_y = run(false).expect("scalar always runs");
        for (w, g) in want_y.iter().zip(&scalar_y) {
            assert!((w - g).abs() <= scale * 0.02, "{w} vs {g}");
        }
        if let Some(simd_y) = run(true) {
            for (w, g) in want_y.iter().zip(&simd_y) {
                assert!((w - g).abs() <= scale * 0.02, "simd {w} vs {g}");
            }
        }
    }

    #[test]
    fn bf16_scan_writes_narrowed_trajectory() {
        let (l, ch, n) = (5, 8, 3);
        let u = pseudo(l * ch, 31, -1.0, 1.0);
        let delta = pseudo(l * ch, 32, 0.05, 0.5);
        let a = pseudo(ch * n, 33, -1.5, -0.2);
        let b = pseudo(l * n, 34, -1.0, 1.0);
        let c = pseudo(l * n, 35, -1.0, 1.0);
        let d = pseudo(ch, 36, -1.0, 1.0);
        let mut y = vec![0f32; l * ch];
        let mut traj = vec![0f32; l * ch * n];
        {
            let ys = UnsafeSlice::new(&mut y);
            let ts = UnsafeSlice::new(&mut traj);
            let mut apack = Vec::new();
            pack_a_lanes8_bf16(&a, n, 0, &mut apack);
            let mut h = vec![0u16; n * 8];
            // SAFETY: single-threaded test; one group owns everything.
            unsafe {
                scan_forward_lanes8_bf16_scalar(
                    &u,
                    &delta,
                    &apack,
                    &b,
                    &c,
                    &d,
                    &mut h,
                    &ys,
                    Some(&ts),
                    l,
                    ch,
                    n,
                    0,
                );
            }
        }
        // Every trajectory value is on the bf16 grid (it was narrowed).
        for v in &traj {
            assert_eq!(
                v.to_bits(),
                crate::bf16::bf16_to_f32(crate::bf16::f32_to_bf16(*v)).to_bits()
            );
        }
    }
}
