//! Packed register-tile GEMM microkernel.
//!
//! `out += a[m×k] · b[k×n]` built BLIS-style: B is packed into
//! zero-padded `KC×NR` column panels and A into `MR×KC` row panels (both
//! checked out of the `peb-pool` scratch pool), then an `MR×NR` = 8×8
//! register tile accumulates one fused multiply–add chain per output
//! element.
//!
//! # Accumulation order
//!
//! For every output element the `kc` blocks ascend and the `kk` offsets
//! within a block ascend, independent of how the caller partitions rows —
//! so results are bitwise reproducible at any `PEB_THREADS` and any
//! caller-side row panelling, for a fixed dispatch level. The SIMD path
//! fuses each multiply–add (FMA), so it differs from the scalar path by
//! bounded ULPs; the scalar path keeps unfused `mul`+`add`.

use crate::bf16::{f32_to_bf16, Bf16x8, ScalarBf16x8};
use crate::{simd_active, ScalarX8, Simd8};

/// Register-tile rows.
pub const MR: usize = 8;
/// Register-tile columns (one vector).
pub const NR: usize = 8;
/// `k`-dimension cache block: one packed `KC×NC` panel of `b` stays hot
/// while row panels of `a` stream over it.
pub const KC: usize = 256;
/// `n`-dimension cache block bounding the packed `b` panel.
pub const NC: usize = 1024;
/// `k`-dimension cache block of the bf16 kernel: panels are half the
/// bytes, so twice the depth fits in the same cache footprint.
pub const KC_BF16: usize = 512;

/// Dispatched GEMM: `out += a · b`, `out` pre-zeroed or pre-accumulated
/// by the caller.
pub fn gemm(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { gemm_avx2(a, b, out, m, k, n) };
        return;
    }
    gemm_generic::<ScalarX8>(a, b, out, m, k, n)
}

/// Forced scalar-backend GEMM (differential tests, `PEB_SIMD=off` A/B).
pub fn gemm_scalar(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_generic::<ScalarX8>(a, b, out, m, k, n)
}

/// Forced SIMD-backend GEMM for differential tests; returns `false`
/// (leaving `out` untouched) when the CPU lacks AVX2+FMA.
pub fn gemm_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`.
        unsafe { gemm_avx2(a, b, out, m, k, n) };
        return true;
    }
    let _ = (a, b, out, m, k, n);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_generic::<crate::AvxX8>(a, b, out, m, k, n)
}

#[inline(always)]
fn gemm_generic<V: Simd8>(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut apack = peb_pool::PoolBuf::<f32>::cleared(m.div_ceil(MR) * MR * KC.min(k));
    let mut bpack = peb_pool::PoolBuf::<f32>::cleared(NC.min(n).div_ceil(NR) * NR * KC.min(k));
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for kc in (0..k).step_by(KC) {
            let kb = KC.min(k - kc);
            pack_b(b, &mut bpack, n, jc, kc, nb, kb);
            pack_a(a, &mut apack, k, kc, kb, m);
            for ir in (0..m).step_by(MR) {
                let mb = MR.min(m - ir);
                let ap = &apack[(ir / MR) * kb * MR..][..kb * MR];
                for jr in (0..nb).step_by(NR) {
                    let nr = NR.min(nb - jr);
                    let bp = &bpack[(jr / NR) * kb * NR..][..kb * NR];
                    let acc = tile::<V>(ap, bp, kb);
                    if nr == NR {
                        for (ii, accv) in acc.iter().enumerate().take(mb) {
                            let row = &mut out[(ir + ii) * n + jc + jr..][..NR];
                            V::load(row).add(*accv).store(row);
                        }
                    } else {
                        // Right-edge tile: only `nr` columns are real.
                        for (ii, accv) in acc.iter().enumerate().take(mb) {
                            let lane = accv.to_array();
                            let row = &mut out[(ir + ii) * n + jc + jr..][..nr];
                            for (o, v) in row.iter_mut().zip(lane) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// 8×8 register tile: `acc[ii][jj] = Σ_kk ap[kk][ii] · bp[kk][jj]`.
#[inline(always)]
fn tile<V: Simd8>(ap: &[f32], bp: &[f32], kb: usize) -> [V; MR] {
    let mut acc = [V::zero(); MR];
    for kk in 0..kb {
        let bv = V::load(&bp[kk * NR..kk * NR + NR]);
        let arow = &ap[kk * MR..kk * MR + MR];
        for (ii, accv) in acc.iter_mut().enumerate() {
            *accv = V::splat(arow[ii]).mul_add(bv, *accv);
        }
    }
    acc
}

// ---------------------------------------------------------------------------
// bf16-storage GEMM
// ---------------------------------------------------------------------------

/// bf16-storage GEMM: `out += a · b` where the packed `a`/`b` panels
/// hold bf16 (operands are narrowed once, at pack time, with
/// round-to-nearest-even) and **all accumulation stays f32**.
///
/// Relative to [`gemm`], each operand contributes one bf16 rounding
/// (≤ 2⁻⁸ relative), so per output element the error is bounded by
/// `~2⁻⁷·Σ|a||b|` on top of the usual f32 accumulation error; the
/// property suite pins this budget. Panel memory traffic is halved and
/// the `k` cache block doubles ([`KC_BF16`]).
///
/// Accumulation order is fixed by the problem shape exactly as in the
/// f32 kernel, so results are bitwise reproducible at any `PEB_THREADS`
/// and any caller-side row panelling, for a fixed dispatch level.
pub fn gemm_bf16(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        crate::note_prec_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { gemm_bf16_avx2(a, b, out, m, k, n) };
        return;
    }
    crate::note_prec_dispatch();
    gemm_bf16_generic::<ScalarBf16x8>(a, b, out, m, k, n)
}

/// Forced scalar-backend bf16 GEMM (differential tests).
pub fn gemm_bf16_scalar(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_bf16_generic::<ScalarBf16x8>(a, b, out, m, k, n)
}

/// Forced SIMD-backend bf16 GEMM; returns `false` (leaving `out`
/// untouched) when the CPU lacks AVX2+FMA.
pub fn gemm_bf16_simd(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`.
        unsafe { gemm_bf16_avx2(a, b, out, m, k, n) };
        return true;
    }
    let _ = (a, b, out, m, k, n);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gemm_bf16_avx2(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_bf16_generic::<crate::bf16::AvxBf16x8>(a, b, out, m, k, n)
}

#[inline(always)]
fn gemm_bf16_generic<B: Bf16x8>(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 || k == 0 {
        return;
    }
    let mut apack = peb_pool::PoolBuf::<u16>::cleared(m.div_ceil(MR) * MR * KC_BF16.min(k));
    let mut bpack = peb_pool::PoolBuf::<u16>::cleared(NC.min(n).div_ceil(NR) * NR * KC_BF16.min(k));
    for jc in (0..n).step_by(NC) {
        let nb = NC.min(n - jc);
        for kc in (0..k).step_by(KC_BF16) {
            let kb = KC_BF16.min(k - kc);
            pack_b_bf16(b, &mut bpack, n, jc, kc, nb, kb);
            pack_a_bf16(a, &mut apack, k, kc, kb, m);
            for ir in (0..m).step_by(MR) {
                let mb = MR.min(m - ir);
                let ap = &apack[(ir / MR) * kb * MR..][..kb * MR];
                for jr in (0..nb).step_by(NR) {
                    let nr = NR.min(nb - jr);
                    let bp = &bpack[(jr / NR) * kb * NR..][..kb * NR];
                    let acc = tile_bf16::<B>(ap, bp, kb);
                    if nr == NR {
                        for (ii, accv) in acc.iter().enumerate().take(mb) {
                            let row = &mut out[(ir + ii) * n + jc + jr..][..NR];
                            B::F::load(row).add(*accv).store(row);
                        }
                    } else {
                        // Right-edge tile: only `nr` columns are real.
                        for (ii, accv) in acc.iter().enumerate().take(mb) {
                            let lane = accv.to_array();
                            let row = &mut out[(ir + ii) * n + jc + jr..][..nr];
                            for (o, v) in row.iter_mut().zip(lane) {
                                *o += v;
                            }
                        }
                    }
                }
            }
        }
    }
}

/// 8×8 register tile over bf16 panels: widen each operand to f32
/// (exact) and accumulate `acc[ii][jj] = Σ_kk â[kk][ii] · b̂[kk][jj]`
/// in f32. The `a` lanes widen scalar-wise (a shift feeding the splat);
/// the `b` vector widens eight lanes at once.
#[inline(always)]
fn tile_bf16<B: Bf16x8>(ap: &[u16], bp: &[u16], kb: usize) -> [B::F; MR] {
    let mut acc = [B::F::zero(); MR];
    for kk in 0..kb {
        let bv = B::widen_load(&bp[kk * NR..kk * NR + NR]);
        let arow = &ap[kk * MR..kk * MR + MR];
        for (ii, accv) in acc.iter_mut().enumerate() {
            let av = B::F::splat(crate::bf16::bf16_to_f32(arow[ii]));
            *accv = av.mul_add(bv, *accv);
        }
    }
    acc
}

/// bf16 variant of [`pack_a`]: same panel layout, values narrowed with
/// round-to-nearest-even at pack time.
fn pack_a_bf16(a: &[f32], buf: &mut Vec<u16>, k: usize, kc: usize, kb: usize, m: usize) {
    buf.clear();
    for ir in (0..m).step_by(MR) {
        let mb = MR.min(m - ir);
        for kk in 0..kb {
            for ii in 0..MR {
                buf.push(if ii < mb {
                    f32_to_bf16(a[(ir + ii) * k + kc + kk])
                } else {
                    0
                });
            }
        }
    }
}

/// bf16 variant of [`pack_b`]: same panel layout, values narrowed with
/// round-to-nearest-even at pack time.
fn pack_b_bf16(
    b: &[f32],
    buf: &mut Vec<u16>,
    n: usize,
    jc: usize,
    kc: usize,
    nb: usize,
    kb: usize,
) {
    buf.clear();
    for jr in (0..nb).step_by(NR) {
        let nr = NR.min(nb - jr);
        for kk in 0..kb {
            let row = &b[(kc + kk) * n + jc + jr..];
            buf.extend(row[..nr].iter().map(|&v| f32_to_bf16(v)));
            buf.resize(buf.len() + (NR - nr), 0);
        }
    }
}

/// Packs `a[0..m, kc..kc+kb]` into `MR`-interleaved row panels:
/// `buf[(ir/MR)·kb·MR + kk·MR + ii] = a[(ir+ii)·k + kc+kk]`, zero-padding
/// rows past `m`.
fn pack_a(a: &[f32], buf: &mut Vec<f32>, k: usize, kc: usize, kb: usize, m: usize) {
    buf.clear();
    for ir in (0..m).step_by(MR) {
        let mb = MR.min(m - ir);
        for kk in 0..kb {
            for ii in 0..MR {
                buf.push(if ii < mb {
                    a[(ir + ii) * k + kc + kk]
                } else {
                    0.0
                });
            }
        }
    }
}

/// Packs `b[kc..kc+kb, jc..jc+nb]` into `NR`-wide column panels:
/// `buf[(jr/NR)·kb·NR + kk·NR + jj] = b[(kc+kk)·n + jc+jr+jj]`,
/// zero-padding columns past `nb`.
fn pack_b(b: &[f32], buf: &mut Vec<f32>, n: usize, jc: usize, kc: usize, nb: usize, kb: usize) {
    buf.clear();
    for jr in (0..nb).step_by(NR) {
        let nr = NR.min(nb - jr);
        for kk in 0..kb {
            let row = &b[(kc + kk) * n + jc + jr..];
            buf.extend_from_slice(&row[..nr]);
            buf.resize(buf.len() + (NR - nr), 0.0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ulp_diff;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn naive(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    out[i * n + j] += a[i * k + kk] * b[kk * n + j];
                }
            }
        }
    }

    /// Reassociated k-sums can cancel, so a pure ULP bound on the result
    /// blows up near zero; accept either tight ULPs or an absolute error
    /// small against the Σ|a||b| ≈ k work that produced the element.
    fn close(w: f32, g: f32, k: usize) -> bool {
        ulp_diff(w, g) <= 256 || (w - g).abs() <= k as f32 * 1e-6
    }

    #[test]
    fn scalar_backend_tracks_naive_within_ulps() {
        // The packed kernel brackets k-sums per KC block, so it is not
        // bitwise equal to the naive triple loop — but stays within tight
        // ULP bounds for unit-scale inputs.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (9, 300, 17),
            (64, 64, 64),
            (13, 7, 130),
        ] {
            let a = pseudo(m * k, 1);
            let b = pseudo(k * n, 2);
            let mut want = vec![0f32; m * n];
            let mut got = vec![0f32; m * n];
            naive(&a, &b, &mut want, m, k, n);
            gemm_scalar(&a, &b, &mut got, m, k, n);
            for (w, g) in want.iter().zip(&got) {
                assert!(close(*w, *g, k), "({m},{k},{n}): {w} vs {g}");
            }
        }
    }

    #[test]
    fn simd_backend_tracks_scalar_within_ulps() {
        for &(m, k, n) in &[(8, 8, 8), (65, 300, 33), (7, 513, 9)] {
            let a = pseudo(m * k, 3);
            let b = pseudo(k * n, 4);
            let mut scalar = vec![0f32; m * n];
            gemm_scalar(&a, &b, &mut scalar, m, k, n);
            let mut simd = vec![0f32; m * n];
            if !gemm_simd(&a, &b, &mut simd, m, k, n) {
                return; // no AVX2 on this machine
            }
            for (s, v) in scalar.iter().zip(&simd) {
                assert!(close(*s, *v, k), "({m},{k},{n}): {s} vs {v}");
            }
        }
    }

    /// bf16 budget: each operand carries one ≤2⁻⁸ relative rounding, so
    /// per element the error against the f32 kernel is bounded by
    /// roughly `2⁻⁷·Σ|a||b|`; we gate at 1% of the absolute-sum mass
    /// (comfortable headroom over the 0.8% analytic bound).
    fn bf16_close(w: f32, g: f32, abs_mass: f32) -> bool {
        (w - g).abs() <= abs_mass * 0.01 + 1e-6
    }

    fn abs_mass(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut mass = vec![0f32; m * n];
        for i in 0..m {
            for kk in 0..k {
                for j in 0..n {
                    mass[i * n + j] += (a[i * k + kk] * b[kk * n + j]).abs();
                }
            }
        }
        mass
    }

    #[test]
    fn bf16_tracks_f32_within_relative_budget() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 2),
            (9, 300, 17),
            (64, 64, 64),
            (7, 513, 9),
        ] {
            let a = pseudo(m * k, 11);
            let b = pseudo(k * n, 12);
            let mut f32_out = vec![0f32; m * n];
            gemm_scalar(&a, &b, &mut f32_out, m, k, n);
            let mass = abs_mass(&a, &b, m, k, n);
            let mut lo = vec![0f32; m * n];
            gemm_bf16_scalar(&a, &b, &mut lo, m, k, n);
            for ((w, g), mm) in f32_out.iter().zip(&lo).zip(&mass) {
                assert!(bf16_close(*w, *g, *mm), "scalar ({m},{k},{n}): {w} vs {g}");
            }
            let mut simd = vec![0f32; m * n];
            if gemm_bf16_simd(&a, &b, &mut simd, m, k, n) {
                for ((w, g), mm) in f32_out.iter().zip(&simd).zip(&mass) {
                    assert!(bf16_close(*w, *g, *mm), "simd ({m},{k},{n}): {w} vs {g}");
                }
            }
        }
    }

    #[test]
    fn bf16_exact_on_bf16_representable_inputs() {
        // Inputs already on the bf16 grid suffer zero narrowing error, so
        // scalar bf16 GEMM must match scalar f32 GEMM bitwise when the
        // blocking coincides (k ≤ KC so both use one k-block).
        let (m, k, n) = (9, 40, 11);
        let a: Vec<f32> = pseudo(m * k, 13)
            .iter()
            .map(|&v| crate::bf16::bf16_to_f32(crate::bf16::f32_to_bf16(v)))
            .collect();
        let b: Vec<f32> = pseudo(k * n, 14)
            .iter()
            .map(|&v| crate::bf16::bf16_to_f32(crate::bf16::f32_to_bf16(v)))
            .collect();
        let mut want = vec![0f32; m * n];
        gemm_scalar(&a, &b, &mut want, m, k, n);
        let mut got = vec![0f32; m * n];
        gemm_bf16_scalar(&a, &b, &mut got, m, k, n);
        for (w, g) in want.iter().zip(&got) {
            assert_eq!(w.to_bits(), g.to_bits());
        }
    }

    #[test]
    fn bf16_simd_is_self_deterministic() {
        let (m, k, n) = (33, 600, 65);
        let a = pseudo(m * k, 15);
        let b = pseudo(k * n, 16);
        let mut r1 = vec![0f32; m * n];
        if !gemm_bf16_simd(&a, &b, &mut r1, m, k, n) {
            return;
        }
        let mut r2 = vec![0f32; m * n];
        assert!(gemm_bf16_simd(&a, &b, &mut r2, m, k, n));
        for (x, y) in r1.iter().zip(&r2) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn simd_backend_is_self_deterministic() {
        let (m, k, n) = (33, 129, 65);
        let a = pseudo(m * k, 5);
        let b = pseudo(k * n, 6);
        let mut r1 = vec![0f32; m * n];
        if !gemm_simd(&a, &b, &mut r1, m, k, n) {
            return;
        }
        let mut r2 = vec![0f32; m * n];
        assert!(gemm_simd(&a, &b, &mut r2, m, k, n));
        for (x, y) in r1.iter().zip(&r2) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
