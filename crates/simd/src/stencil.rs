//! Vectorized explicit diffusion stencil (one z-slice per call).
//!
//! Computes the forward-Euler update of `peb-litho`'s `explicit_step` for
//! a single z-slice: 5/6-point Laplacian with mirror (zero-flux)
//! boundaries in x/y, a bottom mirror in z, and an optional Robin
//! exchange term at the top surface (`z == 0`).
//!
//! The x-interior is processed eight cells per vector with unaligned
//! shifted loads; the two x-edge columns and the vector tail fall back to
//! a scalar path with the identical expression. Every operation is an
//! IEEE-exact lane op in the scalar expression order (no FMA), so the
//! SIMD path is **bitwise identical** to the scalar path — and to the
//! pre-SIMD `explicit_step` loop.

use crate::bf16::{bf16_to_f32, Bf16x8, ScalarBf16x8};
use crate::{simd_active, ScalarX8, Simd8};

/// Parameters of one slice update, shared by all cells.
#[derive(Debug, Clone, Copy)]
pub struct StencilParams {
    /// `D_lateral·dt/dx²`.
    pub rx: f32,
    /// `D_lateral·dt/dy²`.
    pub ry: f32,
    /// `D_normal·dt/dz²`.
    pub rz: f32,
    /// Robin top-surface exchange `(h·dt/dz, saturation)`, if any.
    pub robin_top: Option<(f32, f32)>,
}

/// Applies one explicit Euler step to z-slice `z`.
///
/// `src` is the frozen full `[nz, ny, nx]` field; `dst` is the slice's
/// `ny·nx` output block.
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice(
    src: &[f32],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    debug_assert_eq!(src.len(), nz * ny * nx);
    debug_assert_eq!(dst.len(), ny * nx);
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { explicit_slice_avx2(src, dst, z, nz, ny, nx, p) };
        return;
    }
    explicit_slice_generic::<ScalarX8>(src, dst, z, nz, ny, nx, p)
}

/// Forced scalar-backend variant of [`explicit_slice`].
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice_scalar(
    src: &[f32],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    explicit_slice_generic::<ScalarX8>(src, dst, z, nz, ny, nx, p)
}

/// Forced SIMD-backend variant of [`explicit_slice`]; returns `false`
/// (no-op) without AVX2+FMA.
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice_simd(
    src: &[f32],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`.
        unsafe { explicit_slice_avx2(src, dst, z, nz, ny, nx, p) };
        return true;
    }
    let _ = (src, dst, z, nz, ny, nx, p);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn explicit_slice_avx2(
    src: &[f32],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    explicit_slice_generic::<crate::AvxX8>(src, dst, z, nz, ny, nx, p)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn explicit_slice_generic<V: Simd8>(
    src: &[f32],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    let slice = ny * nx;
    let two = V::splat(2.0);
    let (rxv, ryv, rzv) = (V::splat(p.rx), V::splat(p.ry), V::splat(p.rz));
    let robin = p
        .robin_top
        .map(|(coeff, sat)| (V::splat(coeff), V::splat(sat)));
    for y in 0..ny {
        let base = (z * ny + y) * nx;
        // Mirror boundaries read the centre row/slice itself.
        let ym_base = if y == 0 { base } else { base - nx };
        let yp_base = if y + 1 == ny { base } else { base + nx };
        let zp_base = if z + 1 == nz { base } else { base + slice };
        let zm_base = if z == 0 { base } else { base - slice }; // unused at z == 0
        let out = &mut dst[y * nx..(y + 1) * nx];

        // Scalar cell with the exact reference expression.
        let scalar_cell = |x: usize, out: &mut [f32]| {
            let c = src[base + x];
            let xm = if x == 0 { c } else { src[base + x - 1] };
            let xp = if x + 1 == nx { c } else { src[base + x + 1] };
            let ym = src[ym_base + x];
            let yp = src[yp_base + x];
            let zp = src[zp_base + x];
            let mut acc = p.rx * (xm + xp - 2.0 * c) + p.ry * (ym + yp - 2.0 * c);
            if z == 0 {
                acc += p.rz * (zp - c);
                if let Some((coeff, sat)) = p.robin_top {
                    acc -= coeff * (c - sat);
                }
            } else {
                let zm = src[zm_base + x];
                acc += p.rz * (zm + zp - 2.0 * c);
            }
            out[x] = c + acc;
        };

        scalar_cell(0, out);
        // Vector interior: x ∈ [1, nx−1) in groups of 8 (both shifted
        // loads stay in bounds).
        let mut x = 1usize;
        while x + 8 < nx {
            let c = V::load(&src[base + x..]);
            let xm = V::load(&src[base + x - 1..]);
            let xp = V::load(&src[base + x + 1..]);
            let ym = V::load(&src[ym_base + x..]);
            let yp = V::load(&src[yp_base + x..]);
            let zp = V::load(&src[zp_base + x..]);
            let mut acc = rxv
                .mul(xm.add(xp).sub(two.mul(c)))
                .add(ryv.mul(ym.add(yp).sub(two.mul(c))));
            if z == 0 {
                acc = acc.add(rzv.mul(zp.sub(c)));
                if let Some((coeff, sat)) = robin {
                    acc = acc.sub(coeff.mul(c.sub(sat)));
                }
            } else {
                let zm = V::load(&src[zm_base + x..]);
                acc = acc.add(rzv.mul(zm.add(zp).sub(two.mul(c))));
            }
            c.add(acc).store(&mut out[x..]);
            x += 8;
        }
        for xt in x..nx {
            scalar_cell(xt, out);
        }
    }
}

// ---------------------------------------------------------------------------
// bf16-storage stencil
// ---------------------------------------------------------------------------

/// bf16-storage variant of [`explicit_slice`]: the frozen source field
/// is bf16 (`u16`, narrowed once when the step froze its copy), halving
/// the streamed read traffic of this bandwidth-bound kernel; every load
/// widens exactly to f32 and the update expression is identical. Since
/// widening is exact and the expression uses only IEEE-exact lane ops
/// (no FMA), the scalar and SIMD backends stay **bitwise identical** to
/// each other — the only deviation from the f32 kernel is the single
/// narrowing of the source field.
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice_bf16(
    src: &[u16],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    debug_assert_eq!(src.len(), nz * ny * nx);
    debug_assert_eq!(dst.len(), ny * nx);
    crate::note_prec_dispatch();
    #[cfg(target_arch = "x86_64")]
    if simd_active() {
        crate::note_dispatch();
        // SAFETY: `simd_active()` implies AVX2+FMA were detected.
        unsafe { explicit_slice_bf16_avx2(src, dst, z, nz, ny, nx, p) };
        return;
    }
    explicit_slice_bf16_generic::<ScalarBf16x8>(src, dst, z, nz, ny, nx, p)
}

/// Forced scalar-backend variant of [`explicit_slice_bf16`].
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice_bf16_scalar(
    src: &[u16],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    explicit_slice_bf16_generic::<ScalarBf16x8>(src, dst, z, nz, ny, nx, p)
}

/// Forced SIMD-backend variant of [`explicit_slice_bf16`]; returns
/// `false` (no-op) without AVX2+FMA.
#[allow(clippy::too_many_arguments)]
pub fn explicit_slice_bf16_simd(
    src: &[u16],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    if crate::detected() {
        // SAFETY: guarded by `detected()`.
        unsafe { explicit_slice_bf16_avx2(src, dst, z, nz, ny, nx, p) };
        return true;
    }
    let _ = (src, dst, z, nz, ny, nx, p);
    false
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn explicit_slice_bf16_avx2(
    src: &[u16],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    explicit_slice_bf16_generic::<crate::bf16::AvxBf16x8>(src, dst, z, nz, ny, nx, p)
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn explicit_slice_bf16_generic<B: Bf16x8>(
    src: &[u16],
    dst: &mut [f32],
    z: usize,
    nz: usize,
    ny: usize,
    nx: usize,
    p: StencilParams,
) {
    let slice = ny * nx;
    let two = B::F::splat(2.0);
    let (rxv, ryv, rzv) = (B::F::splat(p.rx), B::F::splat(p.ry), B::F::splat(p.rz));
    let robin = p
        .robin_top
        .map(|(coeff, sat)| (B::F::splat(coeff), B::F::splat(sat)));
    for y in 0..ny {
        let base = (z * ny + y) * nx;
        let ym_base = if y == 0 { base } else { base - nx };
        let yp_base = if y + 1 == ny { base } else { base + nx };
        let zp_base = if z + 1 == nz { base } else { base + slice };
        let zm_base = if z == 0 { base } else { base - slice }; // unused at z == 0
        let out = &mut dst[y * nx..(y + 1) * nx];

        let scalar_cell = |x: usize, out: &mut [f32]| {
            let c = bf16_to_f32(src[base + x]);
            let xm = if x == 0 {
                c
            } else {
                bf16_to_f32(src[base + x - 1])
            };
            let xp = if x + 1 == nx {
                c
            } else {
                bf16_to_f32(src[base + x + 1])
            };
            let ym = bf16_to_f32(src[ym_base + x]);
            let yp = bf16_to_f32(src[yp_base + x]);
            let zp = bf16_to_f32(src[zp_base + x]);
            let mut acc = p.rx * (xm + xp - 2.0 * c) + p.ry * (ym + yp - 2.0 * c);
            if z == 0 {
                acc += p.rz * (zp - c);
                if let Some((coeff, sat)) = p.robin_top {
                    acc -= coeff * (c - sat);
                }
            } else {
                let zm = bf16_to_f32(src[zm_base + x]);
                acc += p.rz * (zm + zp - 2.0 * c);
            }
            out[x] = c + acc;
        };

        scalar_cell(0, out);
        let mut x = 1usize;
        while x + 8 < nx {
            let c = B::widen_load(&src[base + x..]);
            let xm = B::widen_load(&src[base + x - 1..]);
            let xp = B::widen_load(&src[base + x + 1..]);
            let ym = B::widen_load(&src[ym_base + x..]);
            let yp = B::widen_load(&src[yp_base + x..]);
            let zp = B::widen_load(&src[zp_base + x..]);
            let mut acc = rxv
                .mul(xm.add(xp).sub(two.mul(c)))
                .add(ryv.mul(ym.add(yp).sub(two.mul(c))));
            if z == 0 {
                acc = acc.add(rzv.mul(zp.sub(c)));
                if let Some((coeff, sat)) = robin {
                    acc = acc.sub(coeff.mul(c.sub(sat)));
                }
            } else {
                let zm = B::widen_load(&src[zm_base + x..]);
                acc = acc.add(rzv.mul(zm.add(zp).sub(two.mul(c))));
            }
            c.add(acc).store(&mut out[x..]);
            x += 8;
        }
        for xt in x..nx {
            scalar_cell(xt, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(len: usize, salt: u32) -> Vec<f32> {
        (0..len)
            .map(|i| {
                let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
                (x as f32 / u32::MAX as f32) * 0.9
            })
            .collect()
    }

    /// The original peb-litho explicit_step inner loop for one slice.
    fn reference(
        src: &[f32],
        dst: &mut [f32],
        z: usize,
        nz: usize,
        ny: usize,
        nx: usize,
        p: StencilParams,
    ) {
        let at = |zz: usize, y: usize, x: usize| (zz * ny + y) * nx + x;
        for y in 0..ny {
            for x in 0..nx {
                let c = src[at(z, y, x)];
                let xm = if x == 0 { c } else { src[at(z, y, x - 1)] };
                let xp = if x + 1 == nx { c } else { src[at(z, y, x + 1)] };
                let ym = if y == 0 { c } else { src[at(z, y - 1, x)] };
                let yp = if y + 1 == ny { c } else { src[at(z, y + 1, x)] };
                let zp = if z + 1 == nz { c } else { src[at(z + 1, y, x)] };
                let mut acc = p.rx * (xm + xp - 2.0 * c) + p.ry * (ym + yp - 2.0 * c);
                if z == 0 {
                    acc += p.rz * (zp - c);
                    if let Some((coeff, sat)) = p.robin_top {
                        acc -= coeff * (c - sat);
                    }
                } else {
                    let zm = src[at(z - 1, y, x)];
                    acc += p.rz * (zm + zp - 2.0 * c);
                }
                dst[y * nx + x] = c + acc;
            }
        }
    }

    #[test]
    fn both_backends_match_reference_bitwise() {
        let (nz, ny, nx) = (4usize, 5usize, 19usize);
        let src = pseudo(nz * ny * nx, 7);
        let p = StencilParams {
            rx: 0.11,
            ry: 0.13,
            rz: 0.17,
            robin_top: Some((0.021, 0.9)),
        };
        for z in 0..nz {
            let mut want = vec![0f32; ny * nx];
            reference(&src, &mut want, z, nz, ny, nx, p);
            let mut scalar = vec![0f32; ny * nx];
            explicit_slice_scalar(&src, &mut scalar, z, nz, ny, nx, p);
            for (w, g) in want.iter().zip(&scalar) {
                assert_eq!(w.to_bits(), g.to_bits(), "scalar z={z}");
            }
            let mut simd = vec![0f32; ny * nx];
            if explicit_slice_simd(&src, &mut simd, z, nz, ny, nx, p) {
                for (w, g) in want.iter().zip(&simd) {
                    assert_eq!(w.to_bits(), g.to_bits(), "simd z={z}");
                }
            }
        }
    }

    #[test]
    fn bf16_backends_are_bitwise_identical_and_track_f32() {
        let (nz, ny, nx) = (4usize, 5usize, 19usize);
        let srcf = pseudo(nz * ny * nx, 7);
        let src: Vec<u16> = srcf.iter().map(|&v| crate::bf16::f32_to_bf16(v)).collect();
        let p = StencilParams {
            rx: 0.11,
            ry: 0.13,
            rz: 0.17,
            robin_top: Some((0.021, 0.9)),
        };
        for z in 0..nz {
            let mut want = vec![0f32; ny * nx];
            reference(&srcf, &mut want, z, nz, ny, nx, p);
            let mut scalar = vec![0f32; ny * nx];
            explicit_slice_bf16_scalar(&src, &mut scalar, z, nz, ny, nx, p);
            // One narrowing of the source: field values are O(1), so the
            // update deviates by O(2⁻⁸) of the stencil mass.
            for (w, g) in want.iter().zip(&scalar) {
                assert!((w - g).abs() <= 0.02, "z={z}: {w} vs {g}");
            }
            // Widened-bf16 source through the f32 kernel must match the
            // bf16 kernel bitwise (widening is exact, same expression).
            let widened: Vec<f32> = src.iter().map(|&b| crate::bf16::bf16_to_f32(b)).collect();
            let mut via_f32 = vec![0f32; ny * nx];
            explicit_slice_scalar(&widened, &mut via_f32, z, nz, ny, nx, p);
            for (w, g) in via_f32.iter().zip(&scalar) {
                assert_eq!(w.to_bits(), g.to_bits(), "widened z={z}");
            }
            let mut simd = vec![0f32; ny * nx];
            if explicit_slice_bf16_simd(&src, &mut simd, z, nz, ny, nx, p) {
                for (w, g) in scalar.iter().zip(&simd) {
                    assert_eq!(w.to_bits(), g.to_bits(), "simd z={z}");
                }
            }
        }
    }
}
