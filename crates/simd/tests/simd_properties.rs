//! Property suite pinning the peb-simd determinism contract.
//!
//! Two claims from the crate docs are exercised over randomized inputs:
//!
//! * **bit-exact kernels** (elementwise arithmetic, axpy, optimiser
//!   updates, factored tridiagonal line solves) reproduce the scalar
//!   backend *to the bit* on the SIMD backend;
//! * **tolerance kernels** (GEMM, the scan recurrence, `exp`/`sigmoid`)
//!   stay within a fixed ULP/absolute envelope of the scalar backend.
//!
//! All tests drive the forced `*_scalar` / `*_simd` backend variants, so
//! they neither read nor write the process-global dispatch level and can
//! run concurrently with any other test. On hardware without AVX2+FMA
//! the forced SIMD variants return `false` and each comparison
//! degenerates to scalar-vs-scalar, which is vacuously bit-exact.

use peb_par::UnsafeSlice;
use peb_simd::{elementwise as ew, gemm, optim, scan, thomas, ulp_diff};
use proptest::prelude::*;
use proptest::prop::collection::vec as pvec;

/// Hybrid closeness for accumulation kernels: a tight ULP bound away
/// from zero, an absolute bound where cancellation makes ULPs
/// meaningless.
fn close(want: f32, got: f32, ulps: u32, abs: f32) -> bool {
    ulp_diff(want, got) <= ulps || (want - got).abs() <= abs
}

fn assert_bits(want: &[f32], got: &[f32], what: &str) -> Result<(), TestCaseError> {
    for (i, (w, g)) in want.iter().zip(got).enumerate() {
        prop_assert_eq!(w.to_bits(), g.to_bits(), "{}[{}]: {} vs {}", what, i, w, g);
    }
    Ok(())
}

fn values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    pvec(-4.0f32..4.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // -- GEMM (tolerance class: FMA + per-panel reassociation) ----------

    #[test]
    fn gemm_simd_tracks_scalar_within_ulps(
        m in 1usize..24,
        k in 1usize..48,
        n in 1usize..24,
        seed in 0u32..1000,
    ) {
        let a = pseudo(m * k, seed, -2.0, 2.0);
        let b = pseudo(k * n, seed.wrapping_add(1), -2.0, 2.0);
        let mut scalar = vec![0f32; m * n];
        let mut simd = vec![0f32; m * n];
        gemm::gemm_scalar(&a, &b, &mut scalar, m, k, n);
        if gemm::gemm_simd(&a, &b, &mut simd, m, k, n) {
            // k additions of |ab| ≤ 4 bound the cancellation floor.
            let abs = k as f32 * 1e-5;
            for (i, (w, g)) in scalar.iter().zip(&simd).enumerate() {
                prop_assert!(
                    close(*w, *g, 256, abs),
                    "out[{}]: scalar {} vs simd {} ({} ulp)",
                    i, w, g, ulp_diff(*w, *g)
                );
            }
        }
    }

    // -- Elementwise (bit-exact class) ----------------------------------

    #[test]
    fn elementwise_binops_are_bitwise_identical_across_backends(
        len in 0usize..67,
        seed in 0u32..1000,
    ) {
        let a = pseudo(len, seed, -3.0, 3.0);
        // Keep divisors away from zero so ÷ stays finite.
        let b: Vec<f32> = pseudo(len, seed.wrapping_add(1), 0.5, 3.5);
        let mut scalar = vec![0f32; len];
        let mut simd = vec![0f32; len];
        type Pair = (fn(&[f32], &[f32], &mut [f32]), fn(&[f32], &[f32], &mut [f32]) -> bool, &'static str);
        let kernels: [Pair; 4] = [
            (ew::vadd_scalar_backend, ew::vadd_simd_backend, "vadd"),
            (ew::vsub_scalar_backend, ew::vsub_simd_backend, "vsub"),
            (ew::vmul_scalar_backend, ew::vmul_simd_backend, "vmul"),
            (ew::vdiv_scalar_backend, ew::vdiv_simd_backend, "vdiv"),
        ];
        for (scalar_k, simd_k, name) in kernels {
            scalar_k(&a, &b, &mut scalar);
            if simd_k(&a, &b, &mut simd) {
                assert_bits(&scalar, &simd, name)?;
            }
        }
    }

    #[test]
    fn axpy_scale_and_sqrt_are_bitwise_identical_across_backends(
        x in values(51),
        alpha in -2.0f32..2.0,
    ) {
        let y0 = pseudo(x.len(), 7, -1.0, 1.0);
        let mut ys = y0.clone();
        let mut yv = y0.clone();
        ew::vaxpy_scalar_backend(&mut ys, alpha, &x);
        if ew::vaxpy_simd_backend(&mut yv, alpha, &x) {
            assert_bits(&ys, &yv, "vaxpy")?;
        }
        let (mut ys, mut yv) = (y0.clone(), y0.clone());
        ew::vadd_assign_scalar_backend(&mut ys, &x);
        if ew::vadd_assign_simd_backend(&mut yv, &x) {
            assert_bits(&ys, &yv, "vadd_assign")?;
        }
        let mut scalar = vec![0f32; x.len()];
        let mut simd = vec![0f32; x.len()];
        ew::vmul_scalar_scalar_backend(&x, alpha, &mut scalar);
        if ew::vmul_scalar_simd_backend(&x, alpha, &mut simd) {
            assert_bits(&scalar, &simd, "vmul_scalar")?;
        }
        ew::vadd_scalar_scalar_backend(&x, alpha, &mut scalar);
        if ew::vadd_scalar_simd_backend(&x, alpha, &mut simd) {
            assert_bits(&scalar, &simd, "vadd_scalar")?;
        }
        let absx: Vec<f32> = x.iter().map(|v| v.abs()).collect();
        ew::vsqrt_scalar_backend(&absx, &mut scalar);
        if ew::vsqrt_simd_backend(&absx, &mut simd) {
            assert_bits(&scalar, &simd, "vsqrt")?;
        }
    }

    #[test]
    fn exp_and_sigmoid_stay_within_ulp_envelope(x in values(40)) {
        let mut scalar = vec![0f32; x.len()];
        let mut simd = vec![0f32; x.len()];
        ew::vexp_scalar_backend(&x, &mut scalar);
        if ew::vexp_simd_backend(&x, &mut simd) {
            for (i, (w, g)) in scalar.iter().zip(&simd).enumerate() {
                prop_assert!(
                    ulp_diff(*w, *g) <= 16,
                    "vexp[{}]({}): {} vs {} ({} ulp)",
                    i, x[i], w, g, ulp_diff(*w, *g)
                );
            }
        }
        ew::vsigmoid_scalar_backend(&x, &mut scalar);
        if ew::vsigmoid_simd_backend(&x, &mut simd) {
            for (i, (w, g)) in scalar.iter().zip(&simd).enumerate() {
                prop_assert!(
                    close(*w, *g, 32, 1e-6),
                    "vsigmoid[{}]({}): {} vs {} ({} ulp)",
                    i, x[i], w, g, ulp_diff(*w, *g)
                );
            }
        }
    }

    // -- Optimiser updates (bit-exact class) ----------------------------

    #[test]
    fn adam_and_sgd_steps_match_scalar_reference_bitwise(
        len in 1usize..70,
        seed in 0u32..1000,
        step in 1u32..50,
    ) {
        // The dispatched entries take whatever backend the process
        // latched (SIMD on AVX2 hardware); the scalar loops below are the
        // original peb-nn expressions, so this pins SIMD == scalar bits.
        let grad = pseudo(len, seed, -1.0, 1.0);
        let (b1, b2, eps, lr) = (0.9f32, 0.999f32, 1e-8f32, 2e-3f32);
        let inv_bc1 = 1.0 / (1.0 - b1.powi(step as i32));
        let inv_bc2 = 1.0 / (1.0 - b2.powi(step as i32));
        let mut m = pseudo(len, seed.wrapping_add(1), -0.5, 0.5);
        let mut v = pseudo(len, seed.wrapping_add(2), 0.0, 0.5);
        let mut p = pseudo(len, seed.wrapping_add(3), -1.0, 1.0);
        let (mut mr, mut vr, mut pr) = (m.clone(), v.clone(), p.clone());
        for j in 0..len {
            let g = grad[j];
            mr[j] = mr[j] * b1 + g * (1.0 - b1);
            vr[j] = vr[j] * b2 + (g * g) * (1.0 - b2);
            let mhat = mr[j] * inv_bc1;
            let vhat = vr[j] * inv_bc2;
            pr[j] -= mhat / (vhat.sqrt() + eps) * lr;
        }
        optim::adam_moments(&mut m, &mut v, &grad, b1, b2);
        optim::adam_apply(&mut p, &m, &v, inv_bc1, inv_bc2, eps, lr);
        assert_bits(&mr, &m, "adam m")?;
        assert_bits(&vr, &v, "adam v")?;
        assert_bits(&pr, &p, "adam p")?;

        let mut vel = pseudo(len, seed.wrapping_add(4), -1.0, 1.0);
        let mut p = pseudo(len, seed.wrapping_add(5), -1.0, 1.0);
        let (mut velr, mut pr) = (vel.clone(), p.clone());
        for j in 0..len {
            velr[j] = velr[j] * 0.9 + grad[j];
            pr[j] -= velr[j] * lr;
        }
        optim::sgd_momentum(&mut vel, &grad, 0.9);
        optim::sgd_apply(&mut p, &vel, lr);
        assert_bits(&velr, &vel, "sgd vel")?;
        assert_bits(&pr, &p, "sgd p")?;
    }

    // -- Scan lane recurrence (tolerance class) -------------------------

    #[test]
    fn scan_lane_recurrence_tracks_scalar_within_envelope(
        l in 1usize..14,
        n in 1usize..7,
        seed in 0u32..1000,
    ) {
        let ch = 8usize; // one full lane group
        let u = pseudo(l * ch, seed, -1.0, 1.0);
        let delta = pseudo(l * ch, seed.wrapping_add(1), 0.05, 0.5);
        let a = pseudo(ch * n, seed.wrapping_add(2), -1.5, -0.2);
        let b = pseudo(l * n, seed.wrapping_add(3), -1.0, 1.0);
        let c = pseudo(l * n, seed.wrapping_add(4), -1.0, 1.0);
        let d = pseudo(ch, seed.wrapping_add(5), -1.0, 1.0);
        let mut apack = Vec::new();
        scan::pack_a_lanes8(&a, n, 0, &mut apack);

        let run_scalar = |y: &mut Vec<f32>, traj: &mut Vec<f32>| {
            let ys = UnsafeSlice::new(y);
            let ts = UnsafeSlice::new(traj);
            let mut h = vec![0f32; n * 8];
            // SAFETY: single-threaded, one group owning everything.
            unsafe {
                scan::scan_forward_lanes8_scalar(
                    &u, &delta, &apack, &b, &c, &d, &mut h, &ys, Some(&ts), l, ch, n, 0,
                )
            };
        };
        let mut y_s = vec![0f32; l * ch];
        let mut t_s = vec![0f32; l * ch * n];
        run_scalar(&mut y_s, &mut t_s);

        let mut y_v = vec![0f32; l * ch];
        let mut t_v = vec![0f32; l * ch * n];
        let used_simd = {
            let ys = UnsafeSlice::new(&mut y_v);
            let ts = UnsafeSlice::new(&mut t_v);
            let mut h = vec![0f32; n * 8];
            // SAFETY: as above.
            unsafe {
                scan::scan_forward_lanes8_simd(
                    &u, &delta, &apack, &b, &c, &d, &mut h, &ys, Some(&ts), l, ch, n, 0,
                )
            }
        };
        if used_simd {
            // |Δ·a| ≤ 0.75 keeps e ∈ (0.47, 1); states are geometric sums
            // of ≤ l bounded terms, so errors stay near the ULP floor.
            for (i, (w, g)) in y_s.iter().zip(&y_v).enumerate() {
                prop_assert!(
                    close(*w, *g, 1024, 1e-4),
                    "y[{}]: {} vs {} ({} ulp)", i, w, g, ulp_diff(*w, *g)
                );
            }
            for (i, (w, g)) in t_s.iter().zip(&t_v).enumerate() {
                prop_assert!(
                    close(*w, *g, 1024, 1e-4),
                    "h_traj[{}]: {} vs {} ({} ulp)", i, w, g, ulp_diff(*w, *g)
                );
            }
        }
    }

    // -- ADI line solves (bit-exact class) ------------------------------

    #[test]
    fn factored_line_solves_are_bitwise_identical_across_backends(
        n in 2usize..40,
        r in 0.01f32..0.9,
        bump_first in 0.0f32..0.2,
        seed in 0u32..1000,
    ) {
        // The constant-coefficient diffusion system implicit_axis builds.
        let a = vec![-r; n];
        let c = vec![-r; n];
        let mut b = vec![1.0 + 2.0 * r; n];
        b[0] = 1.0 + r;
        b[n - 1] = 1.0 + r;
        let (mut beta, mut gamma) = (Vec::new(), Vec::new());
        thomas::factor_tridiagonal(&a, &b, &c, &mut beta, &mut gamma);

        let stride = 8usize;
        let field0 = pseudo(n * stride, seed, -1.0, 1.0);
        let solve = |field: &mut Vec<f32>, simd: bool| -> bool {
            let slots = UnsafeSlice::new(field);
            // SAFETY: single-threaded, one group owning the whole field.
            unsafe {
                if simd {
                    thomas::solve_factored_lines8_simd(
                        &a, &beta, &gamma, &slots, 0, stride, n, bump_first, 0.0,
                    )
                } else {
                    thomas::solve_factored_lines8_scalar(
                        &a, &beta, &gamma, &slots, 0, stride, n, bump_first, 0.0,
                    );
                    true
                }
            }
        };
        let mut scalar = field0.clone();
        solve(&mut scalar, false);
        let mut simd = field0.clone();
        if solve(&mut simd, true) {
            assert_bits(&scalar, &simd, "lines8")?;
        }

        // And the interleaved group must agree with eight per-line
        // `solve_factored` replays bit for bit.
        for j in 0..stride {
            let mut line: Vec<f32> = (0..n).map(|k| field0[k * stride + j]).collect();
            line[0] += bump_first;
            thomas::solve_factored(&a, &beta, &gamma, &mut line);
            for (k, v) in line.iter().enumerate() {
                prop_assert_eq!(
                    v.to_bits(),
                    scalar[k * stride + j].to_bits(),
                    "line {} element {}", j, k
                );
            }
        }
    }
}

/// Deterministic pseudo-random fill (Weyl sequence), independent of the
/// proptest RNG so shrunk cases stay reproducible from `seed` alone.
fn pseudo(len: usize, salt: u32, lo: f32, hi: f32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32)
                .wrapping_mul(2654435761)
                .wrapping_add(salt.wrapping_mul(40503));
            lo + (x as f32 / u32::MAX as f32) * (hi - lo)
        })
        .collect()
}
