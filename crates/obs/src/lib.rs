//! Zero-dependency observability layer for the SDM-PEB workspace.
//!
//! Every hot path in the workspace (GEMM, convolution lowering, selective
//! scan, FFT lines, ADI sweeps, the train loop) is instrumented with two
//! primitives from this crate:
//!
//! * [`span`] — an RAII scope guard that records hierarchical wall-time
//!   statistics (count / total / min / max) keyed by the `/`-joined path
//!   of enclosing spans on the current thread, merged across threads;
//! * [`count`] — monotonically-aggregated global counters ([`Counter`])
//!   for derived work metrics such as GEMM flops or FFT lines.
//!
//! Collection is gated on the `PEB_TRACE` environment variable, latched
//! on first use:
//!
//! | `PEB_TRACE` | behaviour |
//! |-------------|-----------|
//! | unset / other | disabled: every probe is one relaxed atomic load + a predictable branch |
//! | `summary`   | collect; print a human-readable table to stderr at process exit |
//! | `json`      | collect; write a JSON profile (with a chrome://tracing-compatible `traceEvents` stream) to `PEB_TRACE_OUT` (default `peb_trace.json`) at exit |
//!
//! Tests and binaries can bypass the environment with [`set_mode`], read
//! the aggregate state with [`snapshot`], clear it with [`reset`], and
//! emit reports eagerly with [`write_json`] / [`render_summary`].
//!
//! The crate deliberately has no dependencies (not even the vendored
//! ones) so every other crate in the workspace can instrument itself
//! without cycles; see DESIGN.md §6 for the contract.

pub mod optrace;

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, Once, OnceLock};
use std::time::Instant;

/// Collection mode, latched from `PEB_TRACE` on first probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum TraceMode {
    /// No collection; probes cost one relaxed load + branch.
    Off = 0,
    /// Collect spans/counters; print a table to stderr at exit.
    Summary = 1,
    /// Collect; additionally buffer trace events and write a JSON
    /// profile to `PEB_TRACE_OUT` at exit.
    Json = 2,
}

const MODE_UNINIT: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNINIT);

/// Set once an eager [`write_json`] has run, so the exit hook does not
/// overwrite the profile a binary already emitted.
static FLUSHED: AtomicBool = AtomicBool::new(false);

/// Upper bound on buffered trace events (JSON mode). Overflow is counted
/// in [`Profile::dropped_events`] rather than silently discarded.
const MAX_EVENTS: usize = 262_144;

/// Current trace mode, reading `PEB_TRACE` on first call.
#[inline]
pub fn mode() -> TraceMode {
    match MODE.load(Ordering::Relaxed) {
        0 => TraceMode::Off,
        1 => TraceMode::Summary,
        2 => TraceMode::Json,
        _ => init_mode(),
    }
}

/// Whether any collection is active.
#[inline]
pub fn enabled() -> bool {
    mode() != TraceMode::Off
}

#[cold]
fn init_mode() -> TraceMode {
    let m = match std::env::var("PEB_TRACE").as_deref() {
        Ok("summary") => TraceMode::Summary,
        Ok("json") => TraceMode::Json,
        _ => TraceMode::Off,
    };
    set_mode(m);
    m
}

/// Overrides the trace mode, bypassing `PEB_TRACE`. Used by tests and by
/// binaries that always want a profile.
pub fn set_mode(m: TraceMode) {
    if m != TraceMode::Off {
        // Anchor the event clock and make sure a report happens even if
        // the process exits without an eager flush.
        epoch();
        register_exit_hook();
    }
    MODE.store(m as u8, Ordering::Relaxed);
}

/// Start of the event clock (first enablement).
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn register_exit_hook() {
    static REGISTERED: Once = Once::new();
    REGISTERED.call_once(|| {
        extern "C" fn peb_obs_exit_hook() {
            emit_at_exit();
        }
        extern "C" {
            fn atexit(cb: extern "C" fn()) -> i32;
        }
        // SAFETY: `atexit` is in libc (always linked by std on this
        // platform); the handler only touches `'static` state.
        unsafe {
            atexit(peb_obs_exit_hook);
        }
    });
}

fn emit_at_exit() {
    match mode() {
        TraceMode::Off => {}
        TraceMode::Summary => {
            let _ = std::io::stderr().write_all(render_summary().as_bytes());
        }
        TraceMode::Json => {
            if !FLUSHED.load(Ordering::Relaxed) {
                let path =
                    std::env::var("PEB_TRACE_OUT").unwrap_or_else(|_| "peb_trace.json".to_string());
                match write_json(&path) {
                    Ok(()) => eprintln!("peb-obs: profile written to {path}"),
                    Err(e) => eprintln!("peb-obs: failed to write {path}: {e}"),
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// Monotonic global work counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Floating-point operations performed by dense GEMM/bmm (2·m·k·n).
    GemmFlops = 0,
    /// Bytes materialised by im2col/col2im lowering in the conv layers.
    Im2colBytes = 1,
    /// 1-D FFT lines executed (N-D transforms count one per line).
    FftLines = 2,
    /// Tridiagonal systems solved by the ADI diffusion sweeps.
    AdiLines = 3,
    /// Channel lanes processed by the selective scan (fwd + bwd).
    ScanLanes = 4,
    /// Gauss–Seidel sweep passes performed by the eikonal solver.
    EikonalSweeps = 5,
    /// Fresh heap allocations of tensor/scratch storage. With the
    /// `peb-pool` buffer pool active this counts only pool *misses*
    /// (checkouts that had to allocate); with the pool disabled it counts
    /// every `Tensor` constructor, matching the pre-pool semantics.
    TensorAllocs = 6,
    /// Optimiser steps applied.
    OptimSteps = 7,
    /// Buffer-pool checkouts served from a recycled buffer.
    PoolHits = 8,
    /// Buffer-pool checkouts that had to allocate fresh storage.
    PoolMisses = 9,
    /// FFT transforms served from a cached plan (twiddle tables,
    /// bit-reversal permutation, Bluestein chirp/filter spectra).
    FftPlanHits = 10,
    /// Kernel invocations that dispatched to the SIMD (AVX2+FMA) path in
    /// `peb-simd`; stays 0 under `PEB_SIMD=off` or on unsupported CPUs.
    SimdDispatch = 11,
    /// Micro-batches dropped by the trainer's non-finite loss guard.
    GuardSkippedBatches = 12,
    /// Divergence rollbacks performed by the trainer (restore last good
    /// weights + optimiser state).
    GuardRollbacks = 13,
    /// Epoch retries performed after a rollback (with LR backoff).
    GuardRetries = 14,
    /// Training checkpoints atomically written by `peb-guard`.
    GuardCheckpoints = 15,
    /// Elementwise stages collapsed into fused single-sweep loops by the
    /// `peb-tensor` fused-chain builder. A k-stage `eval()` ticks this by
    /// k while performing a single pool checkout instead of k.
    FusedOps = 16,
    /// Cache-sized slab passes executed by the tiled solver/conv paths
    /// (one tick per slab actually streamed, 0 under `PEB_TILE=off`).
    SlabPasses = 17,
    /// Inference requests accepted by `peb-serve` (shed requests are
    /// counted under [`Counter::ServeShed`] instead).
    ServeRequests = 18,
    /// Dynamic batches executed by the `peb-serve` inference engine (one
    /// tick per `predict_batch` invocation, regardless of batch size).
    ServeBatches = 19,
    /// Requests rejected by `peb-serve` load shedding (bounded queue
    /// full → 429 response).
    ServeShed = 20,
    /// Successful checkpoint hot-swaps performed by the `peb-serve`
    /// model registry (failed swaps keep the old model and do not tick).
    ServeHotswaps = 21,
    /// Kernel invocations that dispatched to a reduced-precision path
    /// (bf16 storage or int8 quantized); stays 0 under `PEB_PREC=f32`
    /// when no request/test opts into a lower precision.
    PrecDispatch = 22,
    /// Inference requests served from a cached execution plan by the
    /// `peb-serve` plan cache (misses record a fresh plan and are not
    /// counted here).
    PlanHits = 23,
    /// Computations executed through `Plan::replay` that completed
    /// without diverging from the recorded checkout stream.
    PlanReplays = 24,
    /// Bytes materialised into record-and-replay arenas (aggregated
    /// across plans; the per-plan high-water mark lives in the plan).
    ArenaBytes = 25,
    /// Inference requests accepted by the `peb-fleet` router (sheds and
    /// upstream failures are still counted here; they are terminal
    /// router responses).
    FleetRequests = 26,
    /// Upstream attempts the router retried after a worker failure
    /// (connect refused/reset, response timeout, CRC-bad frame, 429).
    FleetRetries = 27,
    /// Requests ultimately served by a shard other than their hash-ring
    /// owner (degraded ring or mid-request failover).
    FleetFailovers = 28,
    /// Worker processes restarted by the fleet supervisor after a
    /// crash or a liveness-probe failure streak.
    FleetRestarts = 29,
    /// Requests shed by the router or the worker coalescer because the
    /// propagated deadline would have expired before service (504).
    FleetDeadlineShed = 30,
}

const N_COUNTERS: usize = 31;

const COUNTER_NAMES: [&str; N_COUNTERS] = [
    "gemm_flops",
    "im2col_bytes",
    "fft_lines",
    "adi_tridiag_solves",
    "scan_lanes",
    "eikonal_sweeps",
    "tensor_allocs",
    "optimizer_steps",
    "pool_hits",
    "pool_misses",
    "fft_plan_hits",
    "simd_dispatch",
    "guard_skipped_batches",
    "guard_rollbacks",
    "guard_retries",
    "guard_checkpoints",
    "fused_ops",
    "slab_passes",
    "serve_requests",
    "serve_batches",
    "serve_shed",
    "serve_hotswaps",
    "prec_dispatch",
    "plan_hits",
    "plan_replays",
    "arena_bytes",
    "fleet_requests",
    "fleet_retries",
    "fleet_failovers",
    "fleet_restarts",
    "fleet_deadline_shed",
];

#[allow(clippy::declare_interior_mutable_const)]
const ZERO_U64: AtomicU64 = AtomicU64::new(0);
static COUNTERS: [AtomicU64; N_COUNTERS] = [ZERO_U64; N_COUNTERS];

/// Adds `n` to a global counter when tracing is enabled; no-op otherwise.
#[inline]
pub fn count(c: Counter, n: u64) {
    if enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Current value of a counter (0 while tracing is disabled).
pub fn counter_value(c: Counter) -> u64 {
    COUNTERS[c as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// Aggregated wall-time statistics for one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall time in nanoseconds.
    pub total_ns: u64,
    /// Shortest single span in nanoseconds.
    pub min_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}

impl SpanStat {
    fn absorb(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// One completed chrome://tracing event ("X" phase).
#[derive(Debug, Clone)]
struct TraceEvent {
    path: String,
    start_us: u64,
    dur_us: u64,
    tid: u64,
}

#[derive(Default)]
struct Aggregates {
    spans: HashMap<String, SpanStat>,
    events: Vec<TraceEvent>,
    dropped_events: u64,
}

fn aggregates() -> &'static Mutex<Aggregates> {
    static AGG: OnceLock<Mutex<Aggregates>> = OnceLock::new();
    AGG.get_or_init(|| Mutex::new(Aggregates::default()))
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// RAII guard returned by [`span`]; records the span on drop.
#[must_use = "a span measures the scope it is alive in"]
pub struct SpanGuard {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a named span on the current thread. Nested spans build a
/// `/`-joined hierarchical path (`train.fit/train.epoch/gemm.matmul`).
/// Disabled tracing returns an inert guard.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { name, start: None };
    }
    open_span(name)
}

#[cold]
fn open_span(name: &'static str) -> SpanGuard {
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        let ns = end.duration_since(start).as_nanos().min(u64::MAX as u128) as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            debug_assert_eq!(stack.last().copied(), Some(self.name), "span nesting");
            let path = stack.join("/");
            stack.pop();
            path
        });
        let mut agg = aggregates().lock().expect("peb-obs aggregate lock");
        agg.spans
            .entry(path.clone())
            .or_insert(SpanStat {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            })
            .absorb(ns);
        if mode() == TraceMode::Json {
            if agg.events.len() < MAX_EVENTS {
                let e = epoch();
                let start_us = start.duration_since(e).as_micros().min(u64::MAX as u128) as u64;
                let tid = THREAD_ID.with(|t| *t);
                agg.events.push(TraceEvent {
                    path,
                    start_us,
                    dur_us: ns / 1_000,
                    tid,
                });
            } else {
                agg.dropped_events += 1;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots and reports
// ---------------------------------------------------------------------------

/// A named counter value in a [`Profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Stable counter name (e.g. `gemm_flops`).
    pub name: &'static str,
    /// Aggregated value.
    pub value: u64,
}

/// A span path with its aggregated statistics in a [`Profile`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// `/`-joined hierarchical path.
    pub path: String,
    /// Aggregated statistics.
    pub stat: SpanStat,
}

/// A point-in-time copy of all aggregated observability state.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// All counters, in declaration order.
    pub counters: Vec<CounterSnapshot>,
    /// All span paths, sorted lexicographically.
    pub spans: Vec<SpanSnapshot>,
    /// Events discarded after the buffer cap (JSON mode only).
    pub dropped_events: u64,
}

impl Profile {
    /// Value of a counter by stable name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Total span count over every path containing `needle` (substring
    /// match on the hierarchical path).
    pub fn span_count(&self, needle: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.path.contains(needle))
            .map(|s| s.stat.count)
            .sum()
    }
}

/// Copies the current aggregate state.
pub fn snapshot() -> Profile {
    let agg = aggregates().lock().expect("peb-obs aggregate lock");
    let mut spans: Vec<SpanSnapshot> = agg
        .spans
        .iter()
        .map(|(path, stat)| SpanSnapshot {
            path: path.clone(),
            stat: *stat,
        })
        .collect();
    spans.sort_by(|a, b| a.path.cmp(&b.path));
    Profile {
        counters: COUNTER_NAMES
            .iter()
            .enumerate()
            .map(|(i, &name)| CounterSnapshot {
                name,
                value: COUNTERS[i].load(Ordering::Relaxed),
            })
            .collect(),
        spans,
        dropped_events: agg.dropped_events,
    }
}

/// Clears all counters, span statistics and buffered events. The mode is
/// left untouched.
pub fn reset() {
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    let mut agg = aggregates().lock().expect("peb-obs aggregate lock");
    agg.spans.clear();
    agg.events.clear();
    agg.dropped_events = 0;
    FLUSHED.store(false, Ordering::Relaxed);
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// Renders the human-readable summary table (what `PEB_TRACE=summary`
/// prints to stderr at exit).
pub fn render_summary() -> String {
    let p = snapshot();
    let mut out = String::new();
    let _ = writeln!(out, "== peb-obs profile ==");
    let _ = writeln!(out, "counters:");
    for c in &p.counters {
        if c.value > 0 {
            let _ = writeln!(out, "  {:<20} {}", c.name, c.value);
        }
    }
    let mut spans = p.spans.clone();
    spans.sort_by_key(|s| std::cmp::Reverse(s.stat.total_ns));
    let _ = writeln!(out, "spans (total · count · mean · min · max):");
    for s in &spans {
        let mean = s.stat.total_ns / s.stat.count.max(1);
        let _ = writeln!(
            out,
            "  {:<44} {:>9} · {:>7} · {:>9} · {:>9} · {:>9}",
            s.path,
            fmt_ns(s.stat.total_ns),
            s.stat.count,
            fmt_ns(mean),
            fmt_ns(s.stat.min_ns),
            fmt_ns(s.stat.max_ns),
        );
    }
    if p.dropped_events > 0 {
        let _ = writeln!(out, "(dropped {} trace events past cap)", p.dropped_events);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Serialises the profile as a single JSON object. The top-level
/// `traceEvents` array makes the file directly loadable in
/// chrome://tracing / Perfetto (extra keys are ignored by both).
pub fn to_json() -> String {
    let p = snapshot();
    let agg = aggregates().lock().expect("peb-obs aggregate lock");
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    for (i, c) in p.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    \"{}\": {}", c.name, c.value);
    }
    out.push_str("\n  },\n  \"spans\": [");
    for (i, s) in p.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}, \"min_ns\": {}, \"max_ns\": {}}}",
            json_escape(&s.path),
            s.stat.count,
            s.stat.total_ns,
            s.stat.min_ns,
            s.stat.max_ns
        );
    }
    let _ = write!(
        out,
        "\n  ],\n  \"droppedEvents\": {},\n  \"traceEvents\": [",
        agg.dropped_events
    );
    for (i, e) in agg.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let name = e.path.rsplit('/').next().unwrap_or(&e.path);
        let _ = write!(
            out,
            "\n    {{\"name\": \"{}\", \"cat\": \"peb\", \"ph\": \"X\", \"ts\": {}, \"dur\": {}, \"pid\": 1, \"tid\": {}, \"args\": {{\"path\": \"{}\"}}}}",
            json_escape(name),
            e.start_us,
            e.dur_us,
            e.tid,
            json_escape(&e.path)
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Writes [`to_json`] to `path` and marks the profile as flushed so the
/// exit hook does not overwrite it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_json(path: &str) -> std::io::Result<()> {
    let json = to_json();
    std::fs::write(path, json)?;
    FLUSHED.store(true, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The mode/counter state is process-global; serialise the tests.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GUARD: Mutex<()> = Mutex::new(());
        GUARD.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_probes_collect_nothing() {
        let _g = lock();
        set_mode(TraceMode::Off);
        reset();
        {
            let _s = span("noop.outer");
            count(Counter::GemmFlops, 42);
        }
        let p = snapshot();
        assert_eq!(p.counter("gemm_flops"), 0);
        assert_eq!(p.span_count("noop"), 0);
    }

    #[test]
    fn spans_nest_into_hierarchical_paths() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        reset();
        {
            let _outer = span("outer");
            {
                let _inner = span("inner");
            }
            {
                let _inner = span("inner");
            }
        }
        let p = snapshot();
        assert_eq!(p.span_count("outer/inner"), 2);
        assert_eq!(p.span_count("outer"), 3, "parent also counts");
        let inner = p.spans.iter().find(|s| s.path == "outer/inner").unwrap();
        assert!(inner.stat.min_ns <= inner.stat.max_ns);
        assert!(inner.stat.total_ns >= inner.stat.min_ns + inner.stat.max_ns - 1);
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn counters_aggregate_across_threads() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        reset();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    for _ in 0..100 {
                        count(Counter::FftLines, 1);
                    }
                    let _s = span("worker");
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let p = snapshot();
        assert_eq!(p.counter("fft_lines"), 400);
        assert_eq!(p.span_count("worker"), 4);
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn json_report_contains_spans_counters_and_events() {
        let _g = lock();
        set_mode(TraceMode::Json);
        reset();
        {
            let _s = span("json.demo");
            count(Counter::AdiLines, 7);
        }
        let j = to_json();
        assert!(j.contains("\"traceEvents\""));
        assert!(j.contains("\"json.demo\""));
        assert!(j.contains("\"adi_tridiag_solves\": 7"));
        assert!(j.contains("\"ph\": \"X\""));
        set_mode(TraceMode::Off);
        reset();
    }

    #[test]
    fn summary_renders_nonempty_table() {
        let _g = lock();
        set_mode(TraceMode::Summary);
        reset();
        {
            let _s = span("summary.demo");
            count(Counter::ScanLanes, 3);
        }
        let text = render_summary();
        assert!(text.contains("summary.demo"));
        assert!(text.contains("scan_lanes"));
        set_mode(TraceMode::Off);
        reset();
    }
}
