//! Flat op-list capture for record-and-replay execution plans.
//!
//! While `peb-plan` records a computation it opens an op-trace window on
//! the recording thread; instrumented kernels (GEMM, conv-im2col,
//! selective scan, ADI sweeps, stencils, fused elementwise chains, FFT
//! lines) call [`note`] to append one [`OpDesc`] per dispatched stage
//! with its resolved shapes/tile sizes. The result is the plan's flat
//! op list: a human-readable record of exactly what a replay will
//! execute, in order, with all dynamic decisions (dispatch level, tile
//! geometry, FFT plan handles) already resolved.
//!
//! The window is thread-local and off by default; [`note`] takes the
//! detail as a closure so call sites pay one `Cell` read and no
//! formatting when no window is open (the common case, including all
//! eager execution).

use std::cell::{Cell, RefCell};

/// One captured op: a static kind tag plus resolved-parameter detail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpDesc {
    /// Op family, e.g. `"gemm"`, `"conv.im2col"`, `"scan"`,
    /// `"adi.sweep"`, `"stencil"`, `"fused"`, `"fft.line"`.
    pub kind: &'static str,
    /// Resolved parameters, e.g. `"m=64 k=576 n=4096"` or
    /// `"chain=[mul_t,add_t,sigmoid] len=65536"`.
    pub detail: String,
}

thread_local! {
    static ACTIVE: Cell<bool> = const { Cell::new(false) };
    static OPS: RefCell<Vec<OpDesc>> = const { RefCell::new(Vec::new()) };
}

/// Whether an op-trace window is open on this thread.
#[inline]
pub fn active() -> bool {
    ACTIVE.with(|a| a.get())
}

/// Opens an op-trace window on this thread, discarding any leftover ops.
pub fn begin() {
    OPS.with(|o| o.borrow_mut().clear());
    ACTIVE.with(|a| a.set(true));
}

/// Closes the window and returns the captured op list in call order.
pub fn finish() -> Vec<OpDesc> {
    ACTIVE.with(|a| a.set(false));
    OPS.with(|o| std::mem::take(&mut *o.borrow_mut()))
}

/// Appends one op when a window is open; `detail` is only evaluated
/// then, so instrumentation is free on eager paths.
#[inline]
pub fn note(kind: &'static str, detail: impl FnOnce() -> String) {
    if !active() {
        return;
    }
    OPS.with(|o| {
        o.borrow_mut().push(OpDesc {
            kind,
            detail: detail(),
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_outside_a_window_are_dropped_for_free() {
        let mut evaluated = false;
        note("gemm", || {
            evaluated = true;
            String::from("m=1")
        });
        assert!(!evaluated, "detail closure must not run when inactive");
    }

    #[test]
    fn window_captures_ops_in_order() {
        begin();
        note("gemm", || "m=2 k=3 n=4".to_string());
        note("fft.line", || "n=64".to_string());
        let ops = finish();
        assert_eq!(ops.len(), 2);
        assert_eq!(ops[0].kind, "gemm");
        assert_eq!(ops[0].detail, "m=2 k=3 n=4");
        assert_eq!(ops[1].kind, "fft.line");
        assert!(!active());
        note("gemm", || unreachable!());
        begin();
        let ops = finish();
        assert!(ops.is_empty(), "begin clears leftovers");
    }
}
