//! Criterion benches for the Table III architecture ablations: forward
//! cost of the full SDM-PEB vs single-stage vs 2-D-scan variants, plus
//! the loss-term evaluation costs.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_tensor::{Tensor, Var};
use sdm_peb::{PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

fn bench_model_variants(c: &mut Criterion) {
    let dims = (8usize, 32usize, 32usize);
    let mut rng = StdRng::seed_from_u64(13);
    let acid = Tensor::rand_uniform(&[dims.0, dims.1, dims.2], 0.0, 0.9, &mut rng);
    let mut group = c.benchmark_group("sdm_peb_variants_forward");
    group.sample_size(10);
    for (label, cfg) in [
        ("full", SdmPebConfig::for_grid(dims)),
        ("single_stage", SdmPebConfig::for_grid(dims).single_stage()),
        ("scan_2d", SdmPebConfig::for_grid(dims).scan_2d()),
        (
            "non_overlapped_merging",
            SdmPebConfig::for_grid(dims).non_overlapped(),
        ),
    ] {
        let model = SdmPeb::new(cfg, &mut rng);
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(model.predict(&acid)))
        });
    }
    group.finish();
}

fn bench_loss_terms(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(14);
    let target = Tensor::randn(&[8, 32, 32], &mut rng);
    let pred = &target + &Tensor::randn(&[8, 32, 32], &mut rng).mul_scalar(0.1);
    let loss = PebLoss::paper();
    let mut group = c.benchmark_group("loss_terms");
    group.sample_size(20);
    group.bench_function("max_se", |b| {
        b.iter(|| std::hint::black_box(loss.max_se(&Var::constant(pred.clone()), &target)))
    });
    group.bench_function("focal", |b| {
        b.iter(|| std::hint::black_box(loss.focal(&Var::constant(pred.clone()), &target)))
    });
    group.bench_function("depth_divergence", |b| {
        b.iter(|| {
            std::hint::black_box(loss.depth_divergence(&Var::constant(pred.clone()), &target))
        })
    });
    group.bench_function("combined_with_backward", |b| {
        b.iter(|| {
            let p = Var::parameter(pred.clone());
            loss.combined(&p, &target).backward();
            std::hint::black_box(p.grad())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_model_variants, bench_loss_terms);
criterion_main!(benches);
