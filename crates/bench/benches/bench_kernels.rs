//! Criterion benches for the substrate kernels: GEMM, convolutions, FFTs
//! and the rigorous solver's tridiagonal sweeps — the primitives whose
//! cost determines every number in the model-level benches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_fft::{convolve2d_periodic, fft2d, ComplexField};
use peb_nn::Conv2d;
use peb_tensor::kernels::{matmul_naive, matmul_par};
use peb_tensor::{Tensor, Var};

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(1);
    for n in [32usize, 64, 128] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b).unwrap()))
        });
    }
    group.finish();
}

fn bench_matmul_kernels(c: &mut Criterion) {
    // Packed-vs-naive single-thread GEMM: isolates the microkernel win
    // (packing + register tiling + SIMD) from the threading win.
    let mut group = c.benchmark_group("matmul_kernel");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(6);
    for n in [64usize, 128, 256, 512] {
        let a = Tensor::randn(&[n, n], &mut rng);
        let b = Tensor::randn(&[n, n], &mut rng);
        let mut out = vec![0f32; n * n];
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                matmul_naive(a.data(), b.data(), &mut out, n, n, n);
                std::hint::black_box(out[0])
            })
        });
        group.bench_with_input(BenchmarkId::new("packed", n), &n, |bench, _| {
            bench.iter(|| {
                out.fill(0.0);
                peb_par::with_thread_count(1, || matmul_par(a.data(), b.data(), &mut out, n, n, n));
                std::hint::black_box(out[0])
            })
        });
    }
    group.finish();
}

fn bench_matmul_threads(c: &mut Criterion) {
    // Thread scaling of the full parallel GEMM path.
    let mut group = c.benchmark_group("matmul_threads");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(7);
    let n = 256usize;
    let a = Tensor::randn(&[n, n], &mut rng);
    let b = Tensor::randn(&[n, n], &mut rng);
    let many = peb_par::max_threads().max(2);
    for threads in [1usize, many] {
        group.bench_with_input(
            BenchmarkId::new("threads", threads),
            &threads,
            |bench, &t| {
                bench.iter(|| {
                    peb_par::with_thread_count(t, || std::hint::black_box(a.matmul(&b).unwrap()))
                })
            },
        );
    }
    group.finish();
}

fn bench_conv2d(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv2d_forward");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(2);
    for (label, cin, cout, hw) in [
        ("8x8x32", 8usize, 8usize, 32usize),
        ("16x16x64", 16, 16, 64),
    ] {
        let conv = Conv2d::new(cin, cout, 3, 1, 1, true, &mut rng);
        let x = Var::constant(Tensor::randn(&[cin, hw, hw], &mut rng));
        group.bench_function(label, |b| b.iter(|| std::hint::black_box(conv.forward(&x))));
    }
    group.finish();
}

fn bench_fft(c: &mut Criterion) {
    let mut group = c.benchmark_group("fft2d");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(3);
    for n in [32usize, 64, 128] {
        let f = ComplexField::from_real(&Tensor::randn(&[n, n], &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(fft2d(&f).unwrap()))
        });
    }
    group.finish();
}

fn bench_periodic_convolution(c: &mut Criterion) {
    // The aerial-image kernel convolution: one per depth level per clip.
    let mut group = c.benchmark_group("aerial_convolution");
    group.sample_size(20);
    let mut rng = StdRng::seed_from_u64(4);
    for n in [32usize, 64] {
        let signal = Tensor::randn(&[n, n], &mut rng);
        let kernel = Tensor::randn(&[n, n], &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(convolve2d_periodic(&signal, &kernel).unwrap()))
        });
    }
    group.finish();
}

fn bench_backward_pass(c: &mut Criterion) {
    // Autograd overhead: forward+backward through a conv stack.
    let mut group = c.benchmark_group("autograd_conv_stack");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(5);
    let c1 = Conv2d::new(4, 8, 3, 1, 1, true, &mut rng);
    let c2 = Conv2d::new(8, 4, 3, 1, 1, true, &mut rng);
    let x = Tensor::randn(&[4, 32, 32], &mut rng);
    group.bench_function("fwd_only", |b| {
        b.iter(|| {
            let v = Var::constant(x.clone());
            std::hint::black_box(c2.forward(&c1.forward(&v).relu()))
        })
    });
    group.bench_function("fwd_bwd", |b| {
        b.iter(|| {
            let v = Var::constant(x.clone());
            let loss = c2.forward(&c1.forward(&v).relu()).square().mean();
            loss.backward();
            std::hint::black_box(loss)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_matmul_kernels,
    bench_matmul_threads,
    bench_conv2d,
    bench_fft,
    bench_periodic_convolution,
    bench_backward_pass
);
criterion_main!(benches);
