//! Criterion benches for the SDM unit internals: selective-scan cost vs
//! sequence length, three-direction vs 2-D scan (the Table III row 2
//! design choice), and the attention reduction-ratio sweep (Eq. 15).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_mamba::{
    selective_scan, selective_scan_chunked, LtiSsmBlock, ScanDirection, SdmUnit, SdmUnitConfig,
    SsmBlock,
};
use peb_nn::EfficientSelfAttention;
use peb_tensor::{Tensor, Var};

fn bench_selective_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("selective_scan_forward");
    group.sample_size(10);
    let (ch, n) = (16usize, 8usize);
    for l in [256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(l as u64);
        let u = Var::constant(Tensor::randn(&[l, ch], &mut rng));
        let delta = Var::constant(Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng));
        let a = Var::constant(Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng));
        let b = Var::constant(Tensor::randn(&[l, n], &mut rng));
        let cc = Var::constant(Tensor::randn(&[l, n], &mut rng));
        let d = Var::constant(Tensor::randn(&[ch], &mut rng));
        group.bench_with_input(BenchmarkId::from_parameter(l), &l, |bench, _| {
            bench.iter(|| std::hint::black_box(selective_scan(&u, &delta, &a, &b, &cc, &d)))
        });
        group.bench_with_input(BenchmarkId::new("chunked_64", l), &l, |bench, _| {
            bench.iter(|| {
                std::hint::black_box(selective_scan_chunked(&u, &delta, &a, &b, &cc, &d, 64))
            })
        });
    }
    group.finish();
}

fn bench_scan_directions(c: &mut Criterion) {
    let mut group = c.benchmark_group("sdm_unit_directions");
    group.sample_size(10);
    let dims = (8usize, 16usize, 16usize);
    let l = dims.0 * dims.1 * dims.2;
    let mut rng = StdRng::seed_from_u64(11);
    let x = Var::constant(Tensor::randn(&[l, 16], &mut rng));
    for (label, dirs) in [
        ("three_direction", ScanDirection::ALL.to_vec()),
        ("bidirectional_2d", ScanDirection::BIDIRECTIONAL_2D.to_vec()),
    ] {
        let mut cfg = SdmUnitConfig::new(16, 16, 8);
        cfg.directions = dirs;
        let unit = SdmUnit::new(cfg, &mut rng);
        group.bench_function(label, |b| {
            b.iter(|| std::hint::black_box(unit.forward(&x, dims)))
        });
    }
    group.finish();
}

fn bench_attention_reduction(c: &mut Criterion) {
    let mut group = c.benchmark_group("attention_reduction_sweep");
    group.sample_size(10);
    let l = 1024usize;
    let dim = 16usize;
    let mut rng = StdRng::seed_from_u64(12);
    let x = Var::constant(Tensor::randn(&[l, dim], &mut rng));
    for r in [1usize, 4, 16, 64] {
        let attn = EfficientSelfAttention::new(dim, 2, r, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(r), &r, |bench, _| {
            bench.iter(|| std::hint::black_box(attn.forward(&x)))
        });
    }
    group.finish();
}

fn bench_selective_vs_lti(c: &mut Criterion) {
    // The selectivity ablation: input-dependent (Mamba) vs constant (S4)
    // SSM parameterisation at equal state size.
    let mut group = c.benchmark_group("selective_vs_lti_ssm");
    group.sample_size(10);
    let mut rng = StdRng::seed_from_u64(15);
    let x = Var::constant(Tensor::randn(&[1024, 16], &mut rng));
    let selective = SsmBlock::new(16, 8, &mut rng);
    let lti = LtiSsmBlock::new(16, 8, &mut rng);
    group.bench_function("selective", |b| {
        b.iter(|| std::hint::black_box(selective.forward(&x)))
    });
    group.bench_function("lti", |b| b.iter(|| std::hint::black_box(lti.forward(&x))));
    group.finish();
}

criterion_group!(
    benches,
    bench_selective_scan,
    bench_scan_directions,
    bench_attention_reduction,
    bench_selective_vs_lti
);
criterion_main!(benches);
