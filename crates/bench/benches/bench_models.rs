//! Criterion benches for the runtime (RT) column of Table II: inference
//! cost of every learned PEB solver on one clip.
//!
//! Run with `cargo bench -p peb-bench --bench bench_models`. Grid size is
//! fixed at the tiny preset so the suite completes on CPU; relative
//! ordering (DeepCNN fastest, TEMPO-resist slowest) is the paper-shape
//! target.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_bench::{build_model, ModelKind};
use peb_tensor::Tensor;

fn bench_inference(c: &mut Criterion) {
    let dims = (8usize, 32usize, 32usize);
    let mut rng = StdRng::seed_from_u64(7);
    let acid = Tensor::rand_uniform(&[dims.0, dims.1, dims.2], 0.0, 0.9, &mut rng);
    let mut group = c.benchmark_group("table2_runtime");
    group.sample_size(10);
    for kind in ModelKind::TABLE2 {
        let model = build_model(kind, dims);
        group.bench_function(kind.label(), |b| {
            b.iter(|| std::hint::black_box(model.predict(&acid)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inference);
criterion_main!(benches);
