//! Criterion benches for the rigorous substrate: the PEB
//! reaction–diffusion solve (the 147 s "S-Litho" column of the paper's
//! runtime comparison, at our scale), the implicit-vs-explicit ablation
//! called out in DESIGN.md §4, and the eikonal development solve.

use criterion::{criterion_group, criterion_main, Criterion};

use peb_litho::{
    solve_eikonal, solve_eikonal_fim, EikonalConfig, Grid, LithoFlow, MaskConfig, PebParams,
    PebSolver, TimeScheme,
};
use peb_tensor::Tensor;

fn bench_peb_solver(c: &mut Criterion) {
    let grid = Grid::new(32, 32, 8, 4.0, 4.0, 10.0).unwrap();
    let clip = MaskConfig::demo(grid.nx).generate(1).unwrap();
    let flow = LithoFlow::new(grid);
    let aerial = flow.optics.aerial_image(&grid, &clip).unwrap();
    let acid0 = flow.dill.photoacid(&aerial);

    let mut group = c.benchmark_group("rigorous_peb");
    group.sample_size(10);
    // Short bake so the bench suite stays fast; cost scales linearly in
    // steps, so the full-duration figure is 18× the 5 s number.
    let mut params = PebParams::paper();
    params.duration = 5.0;
    group.bench_function("implicit_lod_dt0.1", |b| {
        let solver = PebSolver::new(params, grid, TimeScheme::ImplicitLod).unwrap();
        b.iter(|| std::hint::black_box(solver.run(&acid0).unwrap()))
    });
    let mut explicit = params;
    explicit.dt = 0.015; // under the stability limit for this grid
    group.bench_function("explicit_euler_dt0.015", |b| {
        let solver = PebSolver::new(explicit, grid, TimeScheme::ExplicitEuler).unwrap();
        b.iter(|| std::hint::black_box(solver.run(&acid0).unwrap()))
    });
    group.finish();
}

fn bench_eikonal(c: &mut Criterion) {
    let grid = Grid::new(32, 32, 8, 4.0, 4.0, 10.0).unwrap();
    let rate = Tensor::from_fn(&grid.shape3(), |i| 0.01 + (i % 97) as f32 * 0.4);
    let mut group = c.benchmark_group("eikonal");
    group.sample_size(10);
    group.bench_function("fast_sweeping_32x32x8", |b| {
        b.iter(|| {
            std::hint::black_box(solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap())
        })
    });
    group.bench_function("fast_iterative_32x32x8", |b| {
        b.iter(|| {
            std::hint::black_box(solve_eikonal_fim(&grid, &rate, EikonalConfig::default()).unwrap())
        })
    });
    group.finish();
}

fn bench_full_flow(c: &mut Criterion) {
    let grid = Grid::new(32, 32, 8, 4.0, 4.0, 10.0).unwrap();
    let clip = MaskConfig::demo(grid.nx).generate(2).unwrap();
    let mut flow = LithoFlow::new(grid);
    flow.peb.duration = 5.0;
    let mut group = c.benchmark_group("full_rigorous_flow");
    group.sample_size(10);
    group.bench_function("mask_to_cd_32x32x8", |b| {
        b.iter(|| std::hint::black_box(flow.run(&clip).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_peb_solver, bench_eikonal, bench_full_flow);
criterion_main!(benches);
