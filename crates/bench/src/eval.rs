//! Full Table II / Table III evaluation pipeline.

use std::time::Instant;

use peb_data::{Dataset, Sample};
use peb_litho::LithoFlow;
use peb_tensor::Tensor;
use sdm_peb::{cd_error_nm, cd_histogram, nrmse, rmse, LabelTransform, PebPredictor};

/// One evaluated row of Table II/III.
#[derive(Debug, Clone)]
pub struct EvalRow {
    /// Model label.
    pub name: String,
    /// Inhibitor RMSE ×10⁻³ (paper column "RMSE (e-3)").
    pub inhibitor_rmse_e3: f32,
    /// Inhibitor NRMSE in percent.
    pub inhibitor_nrmse_pct: f32,
    /// Development-rate RMSE in nm/s.
    pub rate_rmse: f32,
    /// Development-rate NRMSE in percent.
    pub rate_nrmse_pct: f32,
    /// CD error in x (nm).
    pub cd_x_nm: f32,
    /// CD error in y (nm).
    pub cd_y_nm: f32,
    /// Mean inference runtime per clip (seconds).
    pub runtime_s: f32,
    /// CD-error histograms `(x, y)` in the Fig. 7 buckets (percent).
    pub cd_hist: ([f32; 5], [f32; 5]),
}

/// Evaluates a trained model on the test split: decodes label-space
/// predictions back to inhibitor concentrations, derives development
/// rates and resist profiles through the same Mack/eikonal chain as the
/// rigorous reference, and aggregates Eqs. 12–14.
pub fn evaluate_model(model: &dyn PebPredictor, dataset: &Dataset, flow: &LithoFlow) -> EvalRow {
    let label = LabelTransform {
        kc: flow.peb.kc,
        ..LabelTransform::paper()
    };
    let stats = peb_data::LabelStats::from_dataset(dataset);
    let mut inh_rmse = 0f64;
    let mut inh_nrmse = 0f64;
    let mut rate_rmse_acc = 0f64;
    let mut rate_nrmse_acc = 0f64;
    let mut pred_cds = Vec::new();
    let mut true_cds = Vec::new();
    let mut runtime = 0f64;
    for sample in &dataset.test {
        let t0 = Instant::now();
        let y_pred = model.predict(&sample.acid0);
        runtime += t0.elapsed().as_secs_f64();
        let inh_pred = label.decode(&stats.denormalize(&y_pred));
        inh_rmse += rmse(&inh_pred, &sample.inhibitor) as f64;
        inh_nrmse += nrmse(&inh_pred, &sample.inhibitor) as f64;
        let rate_pred = flow.mack.rate_field(&inh_pred);
        let rate_true = flow.mack.rate_field(&sample.inhibitor);
        rate_rmse_acc += rmse(&rate_pred, &rate_true) as f64;
        rate_nrmse_acc += nrmse(&rate_pred, &rate_true) as f64;
        let (_, _, cds) = flow
            .develop(&inh_pred, &sample.clip)
            .expect("develop prediction");
        pred_cds.extend(cds);
        true_cds.extend(sample.cds.iter().copied());
    }
    let n = dataset.test.len().max(1) as f64;
    let cd = cd_error_nm(&pred_cds, &true_cds);
    EvalRow {
        name: model.name().to_string(),
        inhibitor_rmse_e3: (inh_rmse / n * 1e3) as f32,
        inhibitor_nrmse_pct: (inh_nrmse / n * 100.0) as f32,
        rate_rmse: (rate_rmse_acc / n) as f32,
        rate_nrmse_pct: (rate_nrmse_acc / n * 100.0) as f32,
        cd_x_nm: cd.x_nm,
        cd_y_nm: cd.y_nm,
        runtime_s: (runtime / n) as f32,
        cd_hist: cd_histogram(&pred_cds, &true_cds),
    }
}

/// Evaluates the trivial "no bake" baseline — predicting the label of an
/// unreacted resist everywhere — to sanity-check that trained models beat
/// it. Also reports the rigorous solver's own runtime for the speedup
/// column.
pub fn evaluate_rigorous_baseline(dataset: &Dataset, flow: &LithoFlow) -> (f32, f32) {
    let label = LabelTransform {
        kc: flow.peb.kc,
        ..LabelTransform::paper()
    };
    let mut nr = 0f64;
    for sample in &dataset.test {
        let unreacted = label.decode(&Tensor::full(
            sample.inhibitor.shape(),
            label.encode(&Tensor::scalar(0.999)).item(),
        ));
        nr += nrmse(&unreacted, &sample.inhibitor) as f64;
    }
    let rigorous_s = dataset.mean_rigorous_peb_time().as_secs_f32();
    (
        (nr / dataset.test.len().max(1) as f64 * 100.0) as f32,
        rigorous_s,
    )
}

/// Convenience: the per-sample prediction as an inhibitor field, for a
/// model trained with [`train-time standardisation`](peb_data::LabelStats).
pub fn predict_inhibitor(
    model: &dyn PebPredictor,
    sample: &Sample,
    kc: f32,
    stats: &peb_data::LabelStats,
) -> Tensor {
    let label = LabelTransform {
        kc,
        ..LabelTransform::paper()
    };
    label.decode(&stats.denormalize(&model.predict(&sample.acid0)))
}
