//! Uniform construction and training of all compared models.

use std::path::PathBuf;
use std::time::Duration;

use rand::rngs::StdRng;
use rand::SeedableRng;

use peb_baselines::{
    DeePeb, DeePebConfig, DeepCnn, DeepCnnConfig, Fno, FnoConfig, TempoResist, TempoResistConfig,
};
use peb_data::Dataset;
use peb_guard::Context;
use sdm_peb::{PebError, PebLoss, PebPredictor, SdmPeb, SdmPebConfig, TrainConfig, Trainer};

/// Which model (or SDM-PEB ablation) to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// Residual CNN baseline (ref. \[41\]).
    DeepCnn,
    /// Slice-wise conditional generator baseline (ref. \[5\]).
    TempoResist,
    /// Fourier Neural Operator baseline (ref. \[19\]).
    Fno,
    /// FNO + local CNN baseline (ref. \[15\]).
    DeePeb,
    /// The full SDM-PEB model.
    SdmPeb,
    /// Table III row 1: first encoder stage only.
    SdmPebSingleStage,
    /// Table III row 2: bidirectional depth scans only.
    SdmPeb2dScan,
    /// Table III row 3: trained without the focal loss.
    SdmPebNoFocal,
    /// Table III row 4: trained without the divergence regulariser.
    SdmPebNoRegularization,
}

impl ModelKind {
    /// Stable slug for cache file names.
    pub fn slug(self) -> &'static str {
        match self {
            ModelKind::DeepCnn => "deepcnn",
            ModelKind::TempoResist => "tempo",
            ModelKind::Fno => "fno",
            ModelKind::DeePeb => "deepeb",
            ModelKind::SdmPeb => "sdmpeb",
            ModelKind::SdmPebSingleStage => "sdmpeb-single",
            ModelKind::SdmPeb2dScan => "sdmpeb-2d",
            ModelKind::SdmPebNoFocal => "sdmpeb-nofocal",
            ModelKind::SdmPebNoRegularization => "sdmpeb-noreg",
        }
    }

    /// The five Table II rows, in the paper's order.
    pub const TABLE2: [ModelKind; 5] = [
        ModelKind::DeepCnn,
        ModelKind::TempoResist,
        ModelKind::Fno,
        ModelKind::DeePeb,
        ModelKind::SdmPeb,
    ];

    /// The five Table III rows, in the paper's order.
    pub const TABLE3: [ModelKind; 5] = [
        ModelKind::SdmPebSingleStage,
        ModelKind::SdmPeb2dScan,
        ModelKind::SdmPebNoFocal,
        ModelKind::SdmPebNoRegularization,
        ModelKind::SdmPeb,
    ];

    /// Row label as printed in the paper.
    pub fn label(self) -> &'static str {
        match self {
            ModelKind::DeepCnn => "DeepCNN",
            ModelKind::TempoResist => "TEMPO-resist",
            ModelKind::Fno => "FNO",
            ModelKind::DeePeb => "DeePEB",
            ModelKind::SdmPeb => "SDM-PEB",
            ModelKind::SdmPebSingleStage => "Single Layer Encoder",
            ModelKind::SdmPeb2dScan => "2-D Scan",
            ModelKind::SdmPebNoFocal => "w/o. Focal Loss",
            ModelKind::SdmPebNoRegularization => "w/o. Regularization",
        }
    }

    /// The loss configuration this variant trains with (Eq. 22 plus the
    /// Table III loss ablations).
    pub fn loss(self) -> PebLoss {
        match self {
            ModelKind::SdmPebNoFocal => PebLoss::paper().without_focal(),
            ModelKind::SdmPebNoRegularization => PebLoss::paper().without_divergence(),
            _ => PebLoss::paper(),
        }
    }
}

/// Builds a model for `(D, H, W)` inputs with a deterministic per-kind
/// seed.
pub fn build_model(kind: ModelKind, dims: (usize, usize, usize)) -> Box<dyn PebPredictor> {
    let mut rng = StdRng::seed_from_u64(0xD0C5 + kind.label().len() as u64);
    match kind {
        ModelKind::DeepCnn => Box::new(DeepCnn::new(DeepCnnConfig::for_grid(dims), &mut rng)),
        ModelKind::TempoResist => Box::new(TempoResist::new(
            TempoResistConfig::for_grid(dims),
            &mut rng,
        )),
        ModelKind::Fno => Box::new(Fno::new(FnoConfig::for_grid(dims), &mut rng)),
        ModelKind::DeePeb => Box::new(DeePeb::new(DeePebConfig::for_grid(dims), &mut rng)),
        ModelKind::SdmPeb | ModelKind::SdmPebNoFocal | ModelKind::SdmPebNoRegularization => {
            Box::new(SdmPeb::new(SdmPebConfig::for_grid(dims), &mut rng))
        }
        ModelKind::SdmPebSingleStage => Box::new(SdmPeb::new(
            SdmPebConfig::for_grid(dims).single_stage(),
            &mut rng,
        )),
        ModelKind::SdmPeb2dScan => Box::new(SdmPeb::new(
            SdmPebConfig::for_grid(dims).scan_2d(),
            &mut rng,
        )),
    }
}

/// Fault-tolerance options for harness training runs, settable per
/// binary via `--checkpoint-dir <path>` / `--resume` CLI flags or the
/// `PEB_CKPT_DIR` / `PEB_RESUME` environment variables (flags win).
#[derive(Debug, Clone, Default)]
pub struct TrainOptions {
    /// Root directory for training checkpoints; each model checkpoints
    /// into a `<slug>-<epochs>ep/` subdirectory. `None` disables
    /// checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Resume each model from its newest valid checkpoint (requires
    /// `checkpoint_dir`; an empty directory falls back to training from
    /// scratch).
    pub resume: bool,
}

impl TrainOptions {
    /// Reads `PEB_CKPT_DIR` / `PEB_RESUME` from the environment.
    pub fn from_env() -> Self {
        TrainOptions {
            checkpoint_dir: std::env::var_os("PEB_CKPT_DIR").map(PathBuf::from),
            resume: std::env::var_os("PEB_RESUME").is_some(),
        }
    }

    /// Parses `--checkpoint-dir <path>` (or `--checkpoint-dir=<path>`)
    /// and `--resume` from the process arguments, falling back to the
    /// environment for anything not given on the command line.
    pub fn from_args() -> Result<Self, PebError> {
        let mut opts = TrainOptions::from_env();
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            if a == "--checkpoint-dir" {
                let v = args
                    .next()
                    .ok_or_else(|| PebError::config("--checkpoint-dir requires a path argument"))?;
                opts.checkpoint_dir = Some(PathBuf::from(v));
            } else if let Some(v) = a.strip_prefix("--checkpoint-dir=") {
                opts.checkpoint_dir = Some(PathBuf::from(v));
            } else if a == "--resume" {
                opts.resume = true;
            }
        }
        if opts.resume && opts.checkpoint_dir.is_none() {
            return Err(PebError::config(
                "--resume requires --checkpoint-dir (or PEB_CKPT_DIR)",
            ));
        }
        Ok(opts)
    }
}

/// A trained model with bookkeeping.
pub struct TrainedModel {
    /// Which variant this is.
    pub kind: ModelKind,
    /// The trained network.
    pub model: Box<dyn PebPredictor>,
    /// Wall-clock training time.
    pub train_time: Duration,
    /// Final training loss.
    pub final_loss: f32,
}

/// Weight-cache location for a trained model.
fn weight_cache_path(kind: ModelKind, dataset: &Dataset, epochs: usize) -> std::path::PathBuf {
    let mut p = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("target");
    p.push("peb-cache");
    p.push(format!(
        "weights-{}-{}x{}x{}-{}ep.bin",
        kind.slug(),
        dataset.grid.nz,
        dataset.grid.ny,
        dataset.grid.nx,
        epochs
    ));
    p
}

/// Attempts to restore cached weights into `model`; true on success.
fn try_restore(model: &dyn PebPredictor, path: &std::path::Path) -> bool {
    let Ok(tensors) = peb_data::load_tensors(path) else {
        return false;
    };
    let params = model.parameters();
    if params.len() != tensors.len() {
        return false;
    }
    for (p, t) in params.iter().zip(&tensors) {
        if p.value().shape() != t.shape() {
            return false;
        }
    }
    for (p, t) in params.iter().zip(tensors) {
        p.set_value(t);
    }
    true
}

/// Trains every requested model on the same data with the same budget
/// (the paper's "same train-test split … for a fair comparison").
///
/// Models are trained on standardised labels (see
/// [`peb_data::LabelStats`]); [`crate::evaluate_model`] destandardises
/// predictions with the same statistics before computing metrics.
/// Trained weights are cached under `target/peb-cache/` so every
/// table/figure binary shares one training run per configuration; delete
/// the cache (or change `PEB_EPOCHS`) to retrain.
pub fn train_models(
    kinds: &[ModelKind],
    dataset: &Dataset,
    epochs: usize,
) -> Result<Vec<TrainedModel>, PebError> {
    train_models_with(kinds, dataset, epochs, &TrainOptions::from_env())
}

/// [`train_models`] with explicit fault-tolerance options (checkpoint
/// directory and resume behaviour); the table/figure binaries feed their
/// CLI flags through here.
///
/// # Errors
///
/// Propagates any [`PebError`] from training — divergence with an
/// exhausted retry budget, checkpoint I/O failures, or a corrupt
/// checkpoint store on resume.
pub fn train_models_with(
    kinds: &[ModelKind],
    dataset: &Dataset,
    epochs: usize,
    opts: &TrainOptions,
) -> Result<Vec<TrainedModel>, PebError> {
    let dims = (dataset.grid.nz, dataset.grid.ny, dataset.grid.nx);
    let stats = peb_data::LabelStats::from_dataset(dataset);
    let pairs: Vec<_> = peb_data::augment_with_flips(&dataset.training_pairs())
        .into_iter()
        .map(|(acid, label)| (acid, stats.normalize(&label)))
        .collect();
    let mut out = Vec::with_capacity(kinds.len());
    for &kind in kinds {
        let model = build_model(kind, dims);
        let cache = weight_cache_path(kind, dataset, epochs);
        if try_restore(model.as_ref(), &cache) {
            eprintln!("[harness] {}: restored cached weights", kind.label());
            out.push(TrainedModel {
                kind,
                model,
                train_time: Duration::ZERO,
                final_loss: f32::NAN,
            });
            continue;
        }
        eprintln!(
            "[harness] training {} ({epochs} epochs on {} augmented clips)…",
            kind.label(),
            pairs.len()
        );
        let mut cfg = TrainConfig::quick(epochs);
        cfg.loss = kind.loss();
        cfg.guard.checkpoint_dir = opts
            .checkpoint_dir
            .as_ref()
            .map(|root| root.join(format!("{}-{epochs}ep", kind.slug())));
        let trainer = Trainer::new(cfg);
        let report = if opts.resume && trainer.config.guard.checkpoint_dir.is_some() {
            trainer.resume(model.as_ref(), &pairs)
        } else {
            trainer.fit(model.as_ref(), &pairs)
        }
        .with_ctx(|| format!("training {}", kind.label()))?;
        if let Some(epoch) = report.resumed_from {
            eprintln!(
                "[harness]   {}: resumed from checkpoint at epoch {epoch}",
                kind.label()
            );
        }
        eprintln!(
            "[harness]   {}: final loss {:.4} in {:.1?}",
            kind.label(),
            report.final_loss,
            report.elapsed
        );
        let weights: Vec<_> = model.parameters().iter().map(|p| p.value_clone()).collect();
        if let Err(e) = peb_data::save_tensors(&weights, &cache) {
            eprintln!("[harness] could not cache weights: {e}");
        }
        out.push(TrainedModel {
            kind,
            model,
            train_time: report.elapsed,
            final_loss: report.final_loss,
        });
    }
    Ok(out)
}
