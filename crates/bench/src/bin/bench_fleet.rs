//! Chaos-verified fleet availability: emits `BENCH_fleet.json` with
//! availability, p50/p99 latency, retry/failover/restart counts and
//! time-to-recovery under a scripted chaos schedule at load.
//!
//! Two stages:
//!
//! 1. **baseline** — a 1-worker fleet, no faults: the clean p50/p99 and
//!    throughput floor.
//! 2. **chaos** — a 3-worker fleet with one fault armed per shard
//!    (countdowns stagger them through the window): shard 0 aborts
//!    mid-batch (`kill-worker:10`), shard 1 wedges alive-but-silent
//!    (`hang-worker:40`), shard 2 corrupts a response frame
//!    (`corrupt-resp:5`). The load keeps running while the router
//!    fails over and the supervisor restarts the dead and wedged
//!    workers.
//!
//! Every 200-response is digest-checked against the in-process
//! reference model — a fleet answer that differs by one bit from the
//! single-process answer is a hard failure, which also proves no
//! corrupt frame is ever forwarded. In-binary gates: availability
//! (successes over everything except router/worker deadline sheds)
//! ≥ 99%, both restartable faults recovered (restarts ≥ 2, all shards
//! back up), and the corrupt frame caught by the CRC gate. The
//! chaos-vs-baseline throughput-ratio gate needs ≥4 cores (or
//! `PEB_BENCH_STRICT=1`) — on fewer cores router, workers and load
//! generator all fight over the same core and the ratio measures the
//! scheduler, not the fleet; the artifact records `gate_skip_reason`.
//!
//! Knobs: `PEB_FLEET_BENCH_SECS` (window per stage, default 2),
//! `PEB_FLEET_BENCH_WARMUP_SECS` (default 0.5), `PEB_FLEET_BENCH_CONNS`
//! (closed-loop clients, default 2), `PEB_FLEET_WORKER_BIN` (worker
//! binary; defaults to the `peb_worker` sibling of this executable).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use peb_fleet::{Fleet, FleetConfig};
use peb_serve::{Client, ClientError};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

const GRID: (usize, usize, usize) = (4, 16, 16);
const SEED: u64 = 42;
const CLIPS: usize = 8;

struct StageResult {
    name: &'static str,
    workers: usize,
    ok: u64,
    shed: u64,
    errors: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn test_clip(tag: u64) -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| ((i as f32 + tag as f32 * 37.0) * 0.01).cos() * 0.3 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

fn worker_env() -> Vec<(String, String)> {
    vec![
        ("PEB_SERVE_GRID".to_string(), "4x16x16".to_string()),
        ("PEB_SERVE_MODEL".to_string(), "tiny".to_string()),
        ("PEB_SERVE_SEED".to_string(), SEED.to_string()),
        ("PEB_SERVE_MAX_BATCH".to_string(), "4".to_string()),
        ("PEB_SERVE_MAX_WAIT_US".to_string(), "200".to_string()),
        ("PEB_SERVE_THREADS".to_string(), "1".to_string()),
        ("PEB_SERVE_PREC".to_string(), "f32".to_string()),
    ]
}

fn fleet_config(workers: usize) -> FleetConfig {
    FleetConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        worker_bin: std::env::var("PEB_FLEET_WORKER_BIN")
            .ok()
            .filter(|v| !v.is_empty())
            .map(std::path::PathBuf::from),
        worker_env: worker_env(),
        deadline_us: 10_000_000,
        probe_interval: Duration::from_millis(100),
        probe_timeout: Duration::from_millis(500),
        probe_fails: 2,
        // Bound what one hung worker can cost a request, so failover
        // still fits inside the deadline.
        attempt_timeout: Some(Duration::from_secs(1)),
        ..FleetConfig::default()
    }
    .normalized()
}

/// Closed-loop load at `conns` clients for `warmup + window`, digesting
/// every success against `refs`. Only the measured window is counted.
fn run_stage(
    name: &'static str,
    fleet: &Fleet,
    conns: usize,
    warmup: Duration,
    window: Duration,
    refs: &[u64],
) -> StageResult {
    let stop = Arc::new(AtomicBool::new(false));
    let measure = Arc::new(AtomicBool::new(false));
    let addr = fleet.addr();
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let measure = Arc::clone(&measure);
            let refs = refs.to_vec();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let clips: Vec<Tensor> = (0..CLIPS as u64).map(test_clip).collect();
                let mut lat_us: Vec<f64> = Vec::new();
                let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
                let mut i = c; // offset so conns don't march in lockstep
                while !stop.load(Ordering::Relaxed) {
                    let measured = measure.load(Ordering::Relaxed);
                    let tag = i % CLIPS;
                    i += 1;
                    let t0 = Instant::now();
                    match client.infer(&clips[tag]) {
                        Ok(y) => {
                            assert_eq!(
                                y.bit_digest(),
                                refs[tag],
                                "fleet answer for clip {tag} differs from the \
                                 single-process reference"
                            );
                            if measured {
                                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                                ok += 1;
                            }
                        }
                        Err(ClientError::Status(504, _)) => {
                            if measured {
                                shed += 1;
                            }
                        }
                        Err(_) => {
                            if measured {
                                errors += 1;
                            }
                            match Client::connect(addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (lat_us, ok, shed, errors)
            })
        })
        .collect();
    std::thread::sleep(warmup);
    measure.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all_lat: Vec<f64> = Vec::new();
    let (mut ok, mut shed, mut errors) = (0u64, 0u64, 0u64);
    for w in workers {
        let (lat, o, s, e) = w.join().expect("load thread");
        all_lat.extend(lat);
        ok += o;
        shed += s;
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    all_lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    StageResult {
        name,
        workers: fleet.shards().slots().len(),
        ok,
        shed,
        errors,
        qps: ok as f64 / elapsed,
        p50_us: percentile(&all_lat, 50.0),
        p99_us: percentile(&all_lat, 99.0),
        max_us: all_lat.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    let window_s: f64 = std::env::var("PEB_FLEET_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let warmup_s: f64 = std::env::var("PEB_FLEET_BENCH_WARMUP_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let conns: usize = std::env::var("PEB_FLEET_BENCH_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2)
        .max(1);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_secs_f64(window_s);
    let warmup = Duration::from_secs_f64(warmup_s);

    // Single-process reference digests: the bits every fleet answer
    // must reproduce exactly.
    let model = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(SEED));
    let refs: Vec<u64> = (0..CLIPS as u64)
        .map(|t| model.predict(&test_clip(t)).bit_digest())
        .collect();

    println!(
        "bench_fleet: conns={conns} window={window_s}s grid={}x{}x{} cores={cores}",
        GRID.0, GRID.1, GRID.2
    );

    // Stage 1: clean single-worker baseline.
    let baseline_fleet = Fleet::start(fleet_config(1)).expect("baseline fleet");
    let baseline = run_stage("baseline", &baseline_fleet, conns, warmup, window, &refs);
    baseline_fleet.shutdown();
    println!(
        "  baseline: qps={:>8.1} p50={:>8.1}us p99={:>9.1}us ok={} shed={} errors={}",
        baseline.qps, baseline.p50_us, baseline.p99_us, baseline.ok, baseline.shed, baseline.errors
    );

    // Stage 2: three workers, one scripted fault per shard. Countdowns
    // stagger the faults through the load window: the corrupt frame
    // lands almost immediately, the kill a moment later, the wedge
    // deeper in (probes also count toward its request countdown).
    let mut chaos_cfg = fleet_config(3);
    chaos_cfg.worker_chaos = vec![
        (0, "kill-worker:10".to_string()),
        (1, "hang-worker:40".to_string()),
        (2, "corrupt-resp:5".to_string()),
    ];
    let fleet = Fleet::start(chaos_cfg).expect("chaos fleet");
    let shards = fleet.shards();

    let chaos = run_stage("chaos", &fleet, conns, warmup, window, &refs);
    println!(
        "  chaos:    qps={:>8.1} p50={:>8.1}us p99={:>9.1}us ok={} shed={} errors={}",
        chaos.qps, chaos.p50_us, chaos.p99_us, chaos.ok, chaos.shed, chaos.errors
    );

    // Recovery gate: both restartable faults (kill, hang) must be
    // restarted and routable again. The load window may end mid-restart,
    // so allow a post-window grace period before judging.
    let recover_deadline = Instant::now() + Duration::from_secs(30);
    while (shards.up_count() < 3 || shards.total_restarts() < 2)
        && Instant::now() < recover_deadline
    {
        std::thread::sleep(Duration::from_millis(20));
    }
    // Time-to-recovery is clocked by the supervisor's own restart path
    // (down declaration → replacement routable) — sampling up_count
    // from outside misses short outages on a loaded single-core box.
    let time_to_recovery = shards.worst_outage();

    let stats = fleet.stats();
    let retries = stats.retries.load(Ordering::Relaxed);
    let failovers = stats.failovers.load(Ordering::Relaxed);
    let corrupt_rejected = stats.corrupt_rejected.load(Ordering::Relaxed);
    let router_shed = stats.deadline_shed.load(Ordering::Relaxed);
    let restarts = shards.total_restarts();
    let up = shards.up_count();
    // Killed/hung workers must be restarted and serving again.
    assert!(
        restarts >= 2,
        "kill-worker and hang-worker must both force a restart (saw {restarts})"
    );
    assert_eq!(up, 3, "all shards must be routable again after chaos");
    assert!(
        corrupt_rejected >= 1,
        "the scripted corrupt-resp frame must be caught by the CRC gate"
    );
    // One more digest-checked round trip against the restarted fleet.
    {
        let mut c = Client::connect(fleet.addr()).expect("connect");
        for (tag, want) in refs.iter().enumerate() {
            let y = c
                .infer(&test_clip(tag as u64))
                .expect("post-recovery infer");
            assert_eq!(y.bit_digest(), *want, "post-recovery digest for clip {tag}");
        }
    }
    fleet.shutdown();

    // Availability gate: everything except deadline sheds must succeed.
    let attempted = chaos.ok + chaos.errors;
    let availability = if attempted == 0 {
        0.0
    } else {
        chaos.ok as f64 / attempted as f64
    };
    assert!(
        attempted > 0,
        "chaos stage served no measured requests — window too short"
    );
    assert!(
        availability >= 0.99,
        "availability {availability:.4} under chaos fell below 0.99 \
         (ok={}, errors={}, sheds excluded={})",
        chaos.ok,
        chaos.errors,
        chaos.shed
    );
    println!(
        "  availability={availability:.4} retries={retries} failovers={failovers} \
         restarts={restarts} corrupt_rejected={corrupt_rejected} \
         time_to_recovery={:.0}ms",
        time_to_recovery.as_secs_f64() * 1e3
    );

    // Throughput-ratio gate: a 3-worker fleet under chaos should keep a
    // decent fraction of the 1-worker clean throughput — but only where
    // the processes are not all time-slicing one core.
    let strict = std::env::var("PEB_BENCH_STRICT").as_deref() == Ok("1");
    let ratio_gate_applies = strict || cores >= 4;
    let ratio = chaos.qps / baseline.qps.max(1e-9);
    let gate_skip_reason = if ratio_gate_applies {
        "null".to_string()
    } else {
        format!("\"hardware_cores {cores} < 4 and PEB_BENCH_STRICT unset\"")
    };
    if ratio_gate_applies {
        assert!(
            ratio >= 0.5,
            "chaos-fleet throughput collapsed to {ratio:.2}x of the clean baseline"
        );
        println!("  throughput-ratio gate: {ratio:.2}x (>= 0.5x)");
    } else {
        println!("  throughput-ratio gate skipped: {gate_skip_reason}");
    }

    let stage_json = |s: &StageResult| {
        format!(
            "{{\"stage\":\"{}\",\"workers\":{},\"ok\":{},\"shed\":{},\"errors\":{},\"qps\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
            s.name, s.workers, s.ok, s.shed, s.errors, s.qps, s.p50_us, s.p99_us, s.max_us
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"fleet\",\n  \"grid\": \"{}x{}x{}\",\n  \"hardware_cores\": {},\n  \"window_s\": {},\n  \"warmup_s\": {},\n  \"conns\": {},\n  \"chaos_schedule\": [\"0:kill-worker:10\", \"1:hang-worker:40\", \"2:corrupt-resp:5\"],\n  \"stages\": [{},{}],\n  \"availability\": {:.6},\n  \"retries\": {},\n  \"failovers\": {},\n  \"restarts\": {},\n  \"corrupt_rejected\": {},\n  \"router_deadline_shed\": {},\n  \"time_to_recovery_ms\": {:.1},\n  \"throughput_ratio\": {:.3},\n  \"ratio_gate_enforced\": {},\n  \"gate_skip_reason\": {},\n  \"digest_ok\": true\n}}\n",
        GRID.0,
        GRID.1,
        GRID.2,
        cores,
        window_s,
        warmup_s,
        conns,
        stage_json(&baseline),
        stage_json(&chaos),
        availability,
        retries,
        failovers,
        restarts,
        corrupt_rejected,
        router_shed,
        time_to_recovery.as_secs_f64() * 1e3,
        ratio,
        ratio_gate_applies,
        gate_skip_reason,
    );
    std::fs::write("BENCH_fleet.json", &json).expect("write BENCH_fleet.json");
    println!("  wrote BENCH_fleet.json");
}
