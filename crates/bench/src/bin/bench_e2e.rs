//! Paper-scale end-to-end benchmark: emits `BENCH_e2e.json`.
//!
//! Times the full pipeline — rigorous solve (optics → Dill → PEB bake),
//! one-or-more training steps, and inference — at three tiers:
//!
//! * `64x64x16` — the full SIMD × threads × fusion matrix;
//! * `256x256x32` — the CI perf-smoke tier (gate: ≥1.3× end-to-end for
//!   SIMD+fusion at 4 threads vs scalar single-thread);
//! * `512x512x80` — a paper-shape slice (gate: ≥2×), with the bake
//!   duration shortened so the run fits a bench budget; the *ratio* is
//!   what the gate checks, and every configuration runs the same steps.
//!
//! Besides wall times the run asserts the bitwise contracts: fusion
//! on/off, tiling on/off, and 1-vs-4 threads must not change a single
//! bit at a fixed dispatch level. Perf gates are skipped (with a loud
//! note) on machines without ≥4 cores unless `PEB_BENCH_STRICT=1`;
//! `PEB_E2E_MAX_TIER=small|medium` truncates the tier list.

use std::time::Instant;

use peb_litho::{Grid, LithoFlow, MaskConfig, PebSolver};
use peb_nn::{Adam, Optimizer, Parameterized};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

const CLIP_SEED: u64 = 1;
const MODEL_SEED: u64 = 1;

#[derive(Clone, Copy)]
struct Cfg {
    level: peb_simd::Level,
    threads: usize,
    fuse: bool,
    /// Depth-slab tiling (the session's `PEB_TILE` target) — disabled on
    /// the baseline config so the speedup measures the full optimised
    /// path (SIMD + fusion + tiling) against the pre-optimisation
    /// execution. Tiling is bitwise invariant, so digests still agree.
    tile: bool,
}

impl Cfg {
    fn label(&self) -> String {
        format!(
            "{}_{}t_fuse-{}{}",
            self.level.name(),
            self.threads,
            if self.fuse { "on" } else { "off" },
            if self.tile { "" } else { "_tile-off" }
        )
    }
}

struct Timing {
    solver_s: f64,
    train_s: f64,
    infer_s: f64,
    /// FNV-1a over the bit patterns of (inhibitor, last train pred, infer).
    digests: [u64; 3],
}

impl Timing {
    fn total(&self) -> f64 {
        self.solver_s + self.train_s + self.infer_s
    }
}

struct Tier {
    name: &'static str,
    grid: Grid,
    /// Shortened bake (seconds) so big tiers fit the bench budget; every
    /// configuration runs the identical schedule, so ratios are fair.
    bake_s: f32,
    train_steps: usize,
}

/// One full solver + train + infer pass under the given knobs.
fn run_cfg(tier: &Tier, cfg: Cfg, tile_target: Option<usize>) -> Timing {
    peb_simd::set_level(cfg.level);
    peb_tensor::set_fusion_enabled(cfg.fuse);
    peb_pool::tile::set_tile_bytes(if cfg.tile { tile_target } else { None });
    let grid = tier.grid;
    peb_par::with_thread_count(cfg.threads, || {
        let clip = MaskConfig::demo(grid.nx).generate(CLIP_SEED).expect("clip");
        let mut flow = LithoFlow::new(grid);
        flow.peb.duration = tier.bake_s;

        // Rigorous solve: optics → Dill → PEB bake (the paper's runtime
        // comparison point; development/metrology is not on the
        // accelerated path and is excluded).
        let t0 = Instant::now();
        let aerial = flow.optics.aerial_image(&grid, &clip).expect("aerial");
        let acid0 = flow.dill.photoacid(&aerial);
        let solver = PebSolver::new(flow.peb, grid, flow.scheme).expect("solver");
        let state = solver.run(&acid0).expect("bake");
        let solver_s = t0.elapsed().as_secs_f64();

        let label = LabelTransform::paper().encode(&state.inhibitor);
        let mut rng = StdRng::seed_from_u64(MODEL_SEED);
        let model = SdmPeb::new(
            SdmPebConfig::for_grid((grid.nz, grid.ny, grid.nx)),
            &mut rng,
        );
        let loss = PebLoss::paper();
        let mut opt = Adam::new(1e-3);
        let params = model.parameters();

        let t1 = Instant::now();
        let mut train_pred = None;
        for _ in 0..tier.train_steps {
            params.iter().for_each(|p| p.zero_grad());
            let pred = model.forward_train(&acid0);
            loss.combined(&pred, &label).backward();
            opt.step(&params);
            train_pred = Some(pred.value_clone());
        }
        let train_s = t1.elapsed().as_secs_f64();

        let t2 = Instant::now();
        let infer = model.forward(&acid0).value_clone();
        let infer_s = t2.elapsed().as_secs_f64();

        Timing {
            solver_s,
            train_s,
            infer_s,
            digests: [
                state.inhibitor.bit_digest(),
                train_pred.map_or(0, |p| p.bit_digest()),
                infer.bit_digest(),
            ],
        }
    })
}

fn main() {
    peb_pool::set_enabled(true);
    // Counters (slab_passes, fused_ops) must tick for the A/B report.
    peb_obs::set_mode(peb_obs::TraceMode::Summary);
    let detected = peb_simd::detected();
    let best = peb_simd::best_level();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let strict = std::env::var("PEB_BENCH_STRICT").as_deref() == Ok("1");
    let max_tier = std::env::var("PEB_E2E_MAX_TIER").unwrap_or_default();
    let tile_bytes = peb_pool::tile::tile_target_bytes();

    let scalar = peb_simd::Level::Scalar;
    let tiers = [
        Tier {
            name: "64x64x16",
            grid: Grid::new(64, 64, 16, 4.0, 4.0, 6.25).expect("grid"),
            bake_s: 4.0,
            train_steps: 2,
        },
        Tier {
            name: "256x256x32",
            grid: Grid::new(256, 256, 32, 7.8, 7.8, 3.2).expect("grid"),
            bake_s: 2.0,
            train_steps: 1,
        },
        Tier {
            name: "512x512x80",
            grid: Grid::new(512, 512, 80, 3.9, 3.9, 1.25).expect("grid"),
            bake_s: 1.0,
            train_steps: 1,
        },
    ];
    let n_tiers = match max_tier.as_str() {
        "small" => 1,
        "medium" => 2,
        _ => tiers.len(),
    };

    // Per-tier configuration matrices. The full cross product runs only
    // at the small tier; the bigger tiers time the configurations the
    // gates and the scaling story need.
    let matrix_small: Vec<Cfg> = {
        let mut m = Vec::new();
        for &level in &[scalar, best] {
            for &threads in &[1usize, 4, 8] {
                for &fuse in &[true, false] {
                    // The scalar_1t_fuse-off row is the pre-PR baseline:
                    // it also runs untiled.
                    let baseline = level.name() == scalar.name() && threads == 1 && !fuse;
                    m.push(Cfg {
                        level,
                        threads,
                        fuse,
                        tile: !baseline,
                    });
                }
            }
        }
        m.dedup_by(|a, b| a.label() == b.label());
        m
    };
    let matrix_medium = vec![
        Cfg {
            level: scalar,
            threads: 1,
            fuse: false,
            tile: false,
        },
        Cfg {
            level: scalar,
            threads: 1,
            fuse: true,
            tile: true,
        },
        Cfg {
            level: best,
            threads: 1,
            fuse: true,
            tile: true,
        },
        Cfg {
            level: best,
            threads: 4,
            fuse: false,
            tile: true,
        },
        Cfg {
            level: best,
            threads: 4,
            fuse: true,
            tile: true,
        },
        Cfg {
            level: best,
            threads: 8,
            fuse: true,
            tile: true,
        },
    ];
    let matrix_paper = vec![
        Cfg {
            level: scalar,
            threads: 1,
            fuse: false,
            tile: false,
        },
        Cfg {
            level: best,
            threads: 4,
            fuse: true,
            tile: true,
        },
    ];

    println!(
        "== bench_e2e (dispatch: {}, cores: {cores}, tile: {tile_bytes:?}) ==",
        best.name()
    );

    let mut tier_json = Vec::new();
    let mut tier_speedups = Vec::new();
    for (ti, tier) in tiers.iter().take(n_tiers).enumerate() {
        let matrix: &[Cfg] = match ti {
            0 => &matrix_small,
            1 => &matrix_medium,
            _ => &matrix_paper,
        };
        println!(
            "-- tier {} (bake {:.1}s, {} train step(s)) --",
            tier.name, tier.bake_s, tier.train_steps
        );
        // Single-core hosts and shared runners see transient noise; time
        // each config `repeats` times and keep the fastest run (digests
        // must agree across repeats — the pipeline is deterministic).
        // The paper tier defaults to one run for budget.
        let repeats = std::env::var("PEB_E2E_REPEATS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .map(|r| r.max(1))
            .unwrap_or(if ti < 2 { 2 } else { 1 });
        let mut rows = Vec::new();
        for cfg in matrix {
            let mut t = run_cfg(tier, *cfg, tile_bytes);
            for _ in 1..repeats {
                let r = run_cfg(tier, *cfg, tile_bytes);
                assert_eq!(
                    r.digests,
                    t.digests,
                    "repeat run diverged for {} at tier {}",
                    cfg.label(),
                    tier.name
                );
                if r.total() < t.total() {
                    t = r;
                }
            }
            println!(
                "  {:<24} solver {:8.3}s  train {:8.3}s  infer {:8.3}s  total {:8.3}s",
                cfg.label(),
                t.solver_s,
                t.train_s,
                t.infer_s,
                t.total()
            );
            rows.push((*cfg, t));
        }

        // Bitwise contracts within the tier: at a fixed dispatch level,
        // fusion and thread count must not change any digest.
        for (a, ta) in &rows {
            for (b, tb) in &rows {
                if a.level.name() == b.level.name() {
                    assert_eq!(
                        ta.digests,
                        tb.digests,
                        "bitwise mismatch between {} and {} at tier {}",
                        a.label(),
                        b.label(),
                        tier.name
                    );
                }
            }
        }
        println!("  bitwise identical across fusion/threads at fixed level: true");

        let find = |level: peb_simd::Level, threads: usize, fuse: bool| {
            rows.iter()
                .find(|(c, _)| {
                    c.level.name() == level.name() && c.threads == threads && c.fuse == fuse
                })
                .map(|(_, t)| t.total())
        };
        let base = find(scalar, 1, false).expect("baseline config");
        let fast = find(best, 4, true)
            .or_else(|| find(best, 4, false))
            .unwrap_or(base);
        let speedup = base / fast;
        println!("  e2e speedup (simd+fusion 4t vs scalar 1t): {speedup:.2}x");
        tier_speedups.push((tier.name, speedup));

        let row_json: Vec<String> = rows
            .iter()
            .map(|(c, t)| {
                format!(
                    concat!(
                        "      {{ \"level\": \"{}\", \"threads\": {}, \"fusion\": {}, ",
                        "\"tiling\": {}, ",
                        "\"solver_s\": {:.6}, \"train_s\": {:.6}, \"infer_s\": {:.6}, ",
                        "\"total_s\": {:.6} }}"
                    ),
                    c.level.name(),
                    c.threads,
                    c.fuse,
                    c.tile,
                    t.solver_s,
                    t.train_s,
                    t.infer_s,
                    t.total()
                )
            })
            .collect();
        tier_json.push(format!(
            concat!(
                "    {{\n",
                "      \"tier\": \"{}\",\n",
                "      \"bake_seconds\": {:.1},\n",
                "      \"train_steps\": {},\n",
                "      \"e2e_speedup_simd_fusion_4t_vs_scalar_1t\": {:.3},\n",
                "      \"bitwise_identical_within_level\": true,\n",
                "      \"configs\": [\n{}\n      ]\n",
                "    }}"
            ),
            tier.name,
            tier.bake_s,
            tier.train_steps,
            speedup,
            row_json.join(",\n")
        ));
    }

    // Tiled vs untiled A/B at the small tier: bitwise identity plus the
    // slab-pass counter actually ticking.
    let ab_tier = &tiers[0];
    let ab_cfg = Cfg {
        level: best,
        threads: 1,
        fuse: true,
        tile: true,
    };
    // Force a tile target small enough that the 64³-class volume
    // actually splits into slabs (it fits L2 whole under `auto`).
    let before = peb_obs::snapshot().counter("slab_passes");
    let tiled = run_cfg(ab_tier, ab_cfg, Some(32 << 10));
    let slab_passes = peb_obs::snapshot().counter("slab_passes") - before;
    let untiled = run_cfg(
        ab_tier,
        Cfg {
            tile: false,
            ..ab_cfg
        },
        None,
    );
    peb_pool::tile::set_tile_bytes(tile_bytes);
    assert_eq!(tiled.digests, untiled.digests, "tiling changed the numbers");
    println!("  tiled vs untiled bitwise identical: true ({slab_passes} slab passes)");

    // Perf gates. Thread scaling cannot be demonstrated on a single
    // hardware core, so the gates require ≥4 cores (or PEB_BENCH_STRICT).
    let gates_apply = strict || cores >= 4;
    // Self-describing artifact: when the gates are off, say exactly why
    // instead of leaving `perf_gates_enforced: false` unexplained.
    let gate_skip_reason = if gates_apply {
        "null".to_string()
    } else {
        format!("\"hardware_cores {cores} < 4 and PEB_BENCH_STRICT unset\"")
    };
    for (name, speedup) in &tier_speedups {
        let floor = match *name {
            "256x256x32" => 1.3,
            "512x512x80" => 2.0,
            _ => continue,
        };
        if gates_apply {
            assert!(
                *speedup >= floor,
                "tier {name}: e2e speedup {speedup:.2}x below the {floor}x gate"
            );
        } else if *speedup < floor {
            println!(
                "  [gate skipped: {cores} core(s)] tier {name} speedup {speedup:.2}x < {floor}x"
            );
        }
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"solver + train + infer, per tier\",\n",
            "  \"simd_detected\": {},\n",
            "  \"dispatch_level\": \"{}\",\n",
            "  \"hardware_cores\": {},\n",
            "  \"tile_target_bytes\": {},\n",
            "  \"perf_gates_enforced\": {},\n",
            "  \"gate_skip_reason\": {},\n",
            "  \"tiled_vs_untiled_bitwise_identical\": true,\n",
            "  \"slab_passes_small_tier\": {},\n",
            "  \"tiers\": [\n{}\n  ]\n",
            "}}\n"
        ),
        detected,
        best.name(),
        cores,
        tile_bytes.map_or_else(|| "null".into(), |b| b.to_string()),
        gates_apply,
        gate_skip_reason,
        slab_passes,
        tier_json.join(",\n")
    );
    std::fs::write("BENCH_e2e.json", &json).expect("write BENCH_e2e.json");
    println!("  wrote BENCH_e2e.json");
}
