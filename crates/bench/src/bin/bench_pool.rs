//! Measures the `peb-pool` buffer pool and the `peb-fft` plan cache on
//! the Table I micro pipeline, and emits `BENCH_pool.json`.
//!
//! One "step" is the full workload the pool was built for: the rigorous
//! lithography chain (aerial image FFT convolution → PEB ADI →
//! development) followed by one SDM-PEB training step (forward, Eq. 22
//! loss, backward, Adam update). The benchmark runs the step loop twice —
//! pool disabled, pool enabled — and reports wall time, fresh tensor
//! allocations per step, pool hit rates and FFT plan-cache hits, plus
//! bitwise-identity verdicts for pooled-vs-unpooled and 1-vs-4-thread
//! runs of the same pipeline.

use std::time::Instant;

use peb_litho::{Grid, LithoFlow, MaskConfig};
use peb_nn::{Adam, Optimizer, Parameterized};
use peb_obs::TraceMode;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

const STEPS: usize = 15;
const MODEL_SEED: u64 = 1;

fn micro_grid() -> Grid {
    Grid::new(16, 16, 4, 8.0, 8.0, 20.0).expect("micro grid")
}

/// One full pipeline step; returns the prediction so identity checks can
/// compare outputs.
fn step(grid: Grid, model: &SdmPeb, loss: &PebLoss, opt: &mut Adam) -> Tensor {
    let clip = MaskConfig::demo(grid.nx).generate(1).expect("clip");
    let sim = LithoFlow::new(grid).run(&clip).expect("rigorous chain");
    let label = LabelTransform::paper().encode(&sim.inhibitor);
    let params = model.parameters();
    params.iter().for_each(|p| p.zero_grad());
    let pred = model.forward_train(&sim.acid0);
    loss.combined(&pred, &label).backward();
    opt.step(&params);
    pred.value_clone()
}

/// Runs `STEPS` pipeline steps from a fresh model and returns
/// `(wall_seconds, final_prediction, counters)`.
fn run_config(pool_on: bool, threads: usize) -> (f64, Tensor, peb_obs::Profile) {
    peb_pool::set_enabled(pool_on);
    let grid = micro_grid();
    let mut rng = StdRng::seed_from_u64(MODEL_SEED);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let loss = PebLoss::paper();
    let mut opt = Adam::new(1e-3);
    // Warm-up step: populates pools and FFT plan caches so the measured
    // loop reflects steady state, which is what training runs see.
    let _ = peb_par::with_thread_count(threads, || step(grid, &model, &loss, &mut opt));
    peb_obs::reset();
    let start = Instant::now();
    let mut last = None;
    for _ in 0..STEPS {
        last = Some(peb_par::with_thread_count(threads, || {
            step(grid, &model, &loss, &mut opt)
        }));
    }
    let wall = start.elapsed().as_secs_f64();
    (wall, last.expect("at least one step"), peb_obs::snapshot())
}

fn bits_identical(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    // Counters only tick while tracing is on; summary mode is reverted
    // before exit so no trace file or table is emitted as a side effect.
    peb_obs::set_mode(TraceMode::Summary);

    let (wall_off, pred_off, prof_off) = run_config(false, 1);
    let (wall_on, pred_on, prof_on) = run_config(true, 1);
    let (wall_on4, pred_on4, _) = run_config(true, 4);

    let allocs_off = prof_off.counter("tensor_allocs") as f64 / STEPS as f64;
    let allocs_on = prof_on.counter("tensor_allocs") as f64 / STEPS as f64;
    let pool_hits = prof_on.counter("pool_hits");
    let pool_misses = prof_on.counter("pool_misses");
    let plan_hits = prof_on.counter("fft_plan_hits");
    let alloc_reduction = allocs_off / allocs_on.max(1.0);
    let identical_pooling = bits_identical(&pred_off, &pred_on);
    let identical_threads = bits_identical(&pred_on, &pred_on4);

    println!("== peb-pool benchmark (table1 micro pipeline, {STEPS} steps) ==");
    println!("  wall time   pool off: {wall_off:.3}s   pool on: {wall_on:.3}s   pool on ×4 threads: {wall_on4:.3}s");
    println!("  tensor_allocs/step   off: {allocs_off:.0}   on: {allocs_on:.0}   ({alloc_reduction:.1}× reduction)");
    println!(
        "  pool hit rate: {:.1}% ({pool_hits} hits, {pool_misses} misses)   fft plan hits: {plan_hits}",
        100.0 * pool_hits as f64 / (pool_hits + pool_misses).max(1) as f64
    );
    println!("  bitwise identical — pooled vs unpooled: {identical_pooling}, 1 vs 4 threads: {identical_threads}");
    assert!(
        identical_pooling && identical_threads,
        "pooling or threading changed the numbers"
    );
    assert!(
        alloc_reduction >= 10.0,
        "allocation reduction {alloc_reduction:.1}× is below the 10× budget"
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"table1 micro: litho chain + sdm-peb train step\",\n",
            "  \"steps\": {},\n",
            "  \"wall_seconds_pool_off\": {:.6},\n",
            "  \"wall_seconds_pool_on\": {:.6},\n",
            "  \"wall_seconds_pool_on_4_threads\": {:.6},\n",
            "  \"tensor_allocs_per_step_pool_off\": {:.1},\n",
            "  \"tensor_allocs_per_step_pool_on\": {:.1},\n",
            "  \"alloc_reduction_factor\": {:.2},\n",
            "  \"pool_hits\": {},\n",
            "  \"pool_misses\": {},\n",
            "  \"fft_plan_hits\": {},\n",
            "  \"bitwise_identical_pool_on_vs_off\": {},\n",
            "  \"bitwise_identical_1_vs_4_threads\": {}\n",
            "}}\n"
        ),
        STEPS,
        wall_off,
        wall_on,
        wall_on4,
        allocs_off,
        allocs_on,
        alloc_reduction,
        pool_hits,
        pool_misses,
        plan_hits,
        identical_pooling,
        identical_threads,
    );
    std::fs::write("BENCH_pool.json", &json).expect("write BENCH_pool.json");
    println!("  wrote BENCH_pool.json");
    peb_obs::set_mode(TraceMode::Off);
}
