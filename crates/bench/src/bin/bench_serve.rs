//! Closed-loop load generator for `peb-serve`: emits `BENCH_serve.json`
//! with p50/p99 latency, QPS at saturation, and the batch-size
//! histogram.
//!
//! The server runs in-process on a loopback port; N client threads each
//! run a closed loop (send → wait → send) over real TCP for a fixed
//! window at increasing concurrency. A hot-swap is fired mid-load at
//! the highest concurrency, and every 200-response is digest-checked
//! against the two legitimate model versions — load must never change a
//! bit, and a swap must never corrupt an in-flight request.
//!
//! Knobs: `PEB_SERVE_BENCH_SECS` (window per stage, default 2),
//! `PEB_SERVE_BENCH_WARMUP_SECS` (discarded warmup per stage, default
//! 0.5), `PEB_SERVE_BENCH_CONNS` (comma list, default `1,2,4`),
//! `PEB_SERVE_MAX_BATCH` / `PEB_SERVE_MAX_WAIT_US` / `PEB_SERVE_QUEUE`
//! feed straight into the server config. The queue is sized normally,
//! so shed (429) counts appear in the JSON when the box saturates.
//!
//! Each stage runs an untimed warmup window at its own concurrency
//! first — parser cold paths and pool growth land there instead of in
//! the measured p50/p99 (the latency-side analogue of bench_e2e's
//! repeat-min discipline). Connections are keep-alive and shared
//! across stages through one client pool, so TCP + handshake setup is
//! paid once per connection, not once per measurement window; the
//! artifact records this under `client_connections`.

use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use peb_guard::{OptKind, TrainCheckpoint};
use peb_nn::Parameterized;
use peb_serve::{Client, ClientError, ServeConfig, Server};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

const GRID: (usize, usize, usize) = (4, 16, 16);
const BASE_SEED: u64 = 42;
const SWAP_SEED: u64 = 999;

struct StageResult {
    conns: usize,
    requests: u64,
    shed: u64,
    errors: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    max_us: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn test_clip() -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| (i as f32 * 0.017).sin() * 0.4 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

fn model_digest(seed: u64) -> u64 {
    let model = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(seed));
    model.predict(&test_clip()).bit_digest()
}

fn write_swap_checkpoint() -> PathBuf {
    let model = SdmPeb::new(
        SdmPebConfig::tiny(GRID),
        &mut StdRng::seed_from_u64(SWAP_SEED),
    );
    let params: Vec<Tensor> = model.parameters().iter().map(|p| p.value_clone()).collect();
    let n = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 1,
        seed: SWAP_SEED,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n],
        opt_v: vec![None; n],
        quant: None,
    };
    let path = std::env::temp_dir().join(format!("peb_bench_serve_{}.ckpt", std::process::id()));
    ckpt.save(&path).expect("save swap checkpoint");
    path
}

/// One closed-loop stage at `conns` concurrent connections, each
/// driving one of the pre-established keep-alive connections handed in
/// via `clients` (returned to the caller afterwards, so later stages
/// reuse them instead of paying TCP/parser setup per measurement
/// window). The first `warmup` of wall time runs the identical loop
/// with its latencies discarded (pool warm-up, and cold connections on
/// the very first stage), then the measured `window` starts. Returns
/// the stage summary; panics on a digest violation.
fn run_stage(
    addr: SocketAddr,
    clients: &mut Vec<Client>,
    conns: usize,
    warmup: Duration,
    window: Duration,
    ok_digests: &[u64],
) -> StageResult {
    let stop = Arc::new(AtomicBool::new(false));
    let measure = Arc::new(AtomicBool::new(false));
    let clip = test_clip();
    while clients.len() < conns {
        clients.push(Client::connect(addr).expect("connect"));
    }
    let workers: Vec<_> = clients
        .drain(..conns)
        .map(|mut client| {
            let stop = Arc::clone(&stop);
            let measure = Arc::clone(&measure);
            let clip = clip.clone();
            let ok = ok_digests.to_vec();
            std::thread::spawn(move || {
                let mut lat_us: Vec<f64> = Vec::new();
                let (mut shed, mut errors) = (0u64, 0u64);
                while !stop.load(Ordering::Relaxed) {
                    let measured = measure.load(Ordering::Relaxed);
                    let t0 = Instant::now();
                    match client.infer(&clip) {
                        Ok(y) => {
                            if measured {
                                lat_us.push(t0.elapsed().as_secs_f64() * 1e6);
                            }
                            let d = y.bit_digest();
                            assert!(
                                ok.contains(&d),
                                "response bits match no legitimate model version"
                            );
                        }
                        Err(ClientError::Status(429, _)) => {
                            if measured {
                                shed += 1;
                            }
                        }
                        Err(_) => {
                            if measured {
                                errors += 1;
                            }
                            // The connection may be poisoned; reconnect.
                            match Client::connect(addr) {
                                Ok(c) => client = c,
                                Err(_) => break,
                            }
                        }
                    }
                }
                (client, lat_us, shed, errors)
            })
        })
        .collect();
    std::thread::sleep(warmup);
    measure.store(true, Ordering::Relaxed);
    let t0 = Instant::now();
    std::thread::sleep(window);
    stop.store(true, Ordering::Relaxed);
    let mut all_lat: Vec<f64> = Vec::new();
    let (mut shed, mut errors) = (0u64, 0u64);
    for w in workers {
        let (client, lat, s, e) = w.join().expect("client thread");
        clients.push(client);
        all_lat.extend(lat);
        shed += s;
        errors += e;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    all_lat.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    StageResult {
        conns,
        requests: all_lat.len() as u64,
        shed,
        errors,
        qps: all_lat.len() as f64 / elapsed,
        p50_us: percentile(&all_lat, 50.0),
        p99_us: percentile(&all_lat, 99.0),
        max_us: all_lat.last().copied().unwrap_or(0.0),
    }
}

fn main() {
    let window_s: f64 = std::env::var("PEB_SERVE_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2.0);
    let warmup_s: f64 = std::env::var("PEB_SERVE_BENCH_WARMUP_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let conns_list: Vec<usize> = std::env::var("PEB_SERVE_BENCH_CONNS")
        .unwrap_or_else(|_| "1,2,4".to_string())
        .split(',')
        .filter_map(|s| s.trim().parse().ok())
        .filter(|&n| n > 0)
        .collect();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let window = Duration::from_secs_f64(window_s);
    let warmup = Duration::from_secs_f64(warmup_s);

    let mut config = ServeConfig::from_env();
    config.addr = "127.0.0.1:0".into();
    config.grid = GRID;
    config.seed = BASE_SEED;
    let server = Server::start(config.clone()).expect("start server");
    let addr = server.addr();
    println!(
        "bench_serve: {} conns={conns_list:?} window={window_s}s grid={}x{}x{} \
         max_batch={} max_wait={}us queue={} cores={cores}",
        addr, GRID.0, GRID.1, GRID.2, config.max_batch, config.max_wait_us, config.queue_cap,
    );

    // Reference digests: responses must match one of the two versions.
    let base_digest = model_digest(BASE_SEED);
    let swap_digest = model_digest(SWAP_SEED);
    assert_ne!(base_digest, swap_digest);
    let ok_digests = [base_digest, swap_digest];

    // Warmup (not timed) — also verifies the base model serves.
    {
        let mut c = Client::connect(addr).expect("connect");
        for _ in 0..3 {
            let y = c.infer(&test_clip()).expect("warmup infer");
            assert_eq!(y.bit_digest(), base_digest, "warmup digest mismatch");
        }
    }

    let mut stages: Vec<StageResult> = Vec::new();
    let last = conns_list.len().saturating_sub(1);
    let ckpt_path = write_swap_checkpoint();
    // Keep-alive connection pool shared across stages: each stage
    // borrows the connections it needs and returns them, so only the
    // first use of a connection pays TCP + parser setup. (Earlier
    // revisions reconnected every stage, which billed connection
    // setup to the warmup of every measurement window.)
    let mut clients: Vec<Client> = Vec::new();
    for (i, &conns) in conns_list.iter().enumerate() {
        // Fire a hot-swap mid-window at the highest concurrency stage.
        let swapper = (i == last).then(|| {
            let path = ckpt_path.clone();
            // Land the swap mid-way through the *measured* window.
            let half = warmup + window / 2;
            std::thread::spawn(move || {
                std::thread::sleep(half);
                let mut c = Client::connect(addr).expect("connect");
                c.swap(path.to_str().expect("utf8 path"))
                    .expect("hot-swap under load")
            })
        });
        let r = run_stage(addr, &mut clients, conns, warmup, window, &ok_digests);
        if let Some(s) = swapper {
            let v = s.join().expect("swapper thread");
            println!(
                "  hot-swap under load → version {} (epoch {})",
                v.version, v.epoch
            );
        }
        println!(
            "  conns={:<2} qps={:>8.1} p50={:>8.1}us p99={:>9.1}us shed={} errors={}",
            r.conns, r.qps, r.p50_us, r.p99_us, r.shed, r.errors
        );
        stages.push(r);
    }
    std::fs::remove_file(&ckpt_path).ok();

    let stats = server.handle().stats();
    let saturation_qps = stages.iter().map(|s| s.qps).fold(0.0, f64::max);
    let hist = stats.batch_hist_entries();
    let hotswaps = stats.hotswaps.load(Ordering::Relaxed);
    let total_shed: u64 = stages.iter().map(|s| s.shed).sum();
    drop(clients);
    server.shutdown();

    assert!(hotswaps >= 1, "the under-load hot-swap must have landed");
    assert!(!hist.is_empty(), "batch histogram must not be empty");

    // Conns-scaling gate: more offered load must not collapse
    // throughput (batching should absorb it). Meaningless on boxes
    // where clients and the engine fight over one core, so the gate
    // requires ≥4 cores or PEB_BENCH_STRICT=1 — and the artifact says
    // which case it was in.
    let strict = std::env::var("PEB_BENCH_STRICT").as_deref() == Ok("1");
    let scaling_gate_applies = (strict || cores >= 4) && stages.len() >= 2;
    let gate_skip_reason = if scaling_gate_applies {
        "null".to_string()
    } else if stages.len() < 2 {
        "\"fewer than 2 concurrency stages configured\"".to_string()
    } else {
        format!("\"hardware_cores {cores} < 4 and PEB_BENCH_STRICT unset\"")
    };
    if scaling_gate_applies {
        let first = stages.first().map_or(0.0, |s| s.qps);
        let last_qps = stages.last().map_or(0.0, |s| s.qps);
        let ratio = last_qps / first.max(1e-9);
        assert!(
            ratio >= 0.9,
            "throughput collapsed under load: {ratio:.2}x from {} to {} conns",
            stages.first().map_or(0, |s| s.conns),
            stages.last().map_or(0, |s| s.conns),
        );
        println!("  conns-scaling gate: {ratio:.2}x (>= 0.9x)");
    } else {
        println!("  conns-scaling gate skipped: {gate_skip_reason}");
    }

    let stages_json: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "{{\"conns\":{},\"requests\":{},\"shed\":{},\"errors\":{},\"qps\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"max_us\":{:.1}}}",
                s.conns, s.requests, s.shed, s.errors, s.qps, s.p50_us, s.p99_us, s.max_us
            )
        })
        .collect();
    let hist_json: Vec<String> = hist
        .iter()
        .map(|(size, count)| format!("\"{size}\":{count}"))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serve\",\n  \"grid\": \"{}x{}x{}\",\n  \"max_batch\": {},\n  \"max_wait_us\": {},\n  \"queue_cap\": {},\n  \"hardware_cores\": {},\n  \"window_s\": {},\n  \"warmup_s\": {},\n  \"client_connections\": \"keepalive-across-stages\",\n  \"conns_scaling_enforced\": {},\n  \"gate_skip_reason\": {},\n  \"stages\": [{}],\n  \"saturation_qps\": {:.2},\n  \"batch_hist\": {{{}}},\n  \"hotswaps\": {},\n  \"shed_total\": {},\n  \"digest_ok\": true\n}}\n",
        GRID.0,
        GRID.1,
        GRID.2,
        config.max_batch,
        config.max_wait_us,
        config.queue_cap,
        cores,
        window_s,
        warmup_s,
        scaling_gate_applies,
        gate_skip_reason,
        stages_json.join(","),
        saturation_qps,
        hist_json.join(","),
        hotswaps,
        total_shed,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "  saturation_qps={saturation_qps:.1} hotswaps={hotswaps} shed={total_shed}\n  wrote BENCH_serve.json"
    );
}
