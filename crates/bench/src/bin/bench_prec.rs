//! Mixed-precision benchmark: emits `BENCH_prec.json`.
//!
//! Measures, per precision level (`f32` / `bf16` / `int8`):
//!
//! * per-kernel repeat-min throughput — packed GEMM, the selective-scan
//!   lane recurrence, and the explicit diffusion stencil — on the
//!   detected best dispatch level;
//! * end-to-end single-clip inference latency through `with_prec`;
//! * parameter memory footprint (f32 storage, bf16 narrowed storage,
//!   int8 post-training-quantized storage from the PTQ calibrator);
//! * serve-path saturation QPS and p99 latency, f32 vs int8, each
//!   stage preceded by a discarded warmup window;
//! * Table-II-style metric deltas of the reduced-precision predictions
//!   against the f32 prediction (RMSE, SSIM, CD error through the
//!   develop chain).
//!
//! Gate policy follows `bench_e2e`: **accuracy gates always run** (the
//! metric-delta budgets fail the build on any hardware), while the
//! perf-ratio gates — bf16 GEMM ≥ 1.4× f32 and int8 serve ≥ 1.3× f32
//! saturation QPS — require ≥4 hardware cores or `PEB_BENCH_STRICT=1`,
//! and record a `gate_skip_reason` otherwise. The affected rows of
//! `BENCH_e2e.json` (`infer_s`) and `BENCH_serve.json` (`qps`/`p99_ms`)
//! are re-emitted here in the `e2e_rows` / `serve_rows` sections.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use peb_guard::{OptKind, TrainCheckpoint};
use peb_litho::{Grid, LithoFlow, MaskConfig};
use peb_nn::Parameterized;
use peb_par::UnsafeSlice;
use peb_serve::{Client, ServeConfig, Server};
use peb_simd::{bf16, scan, stencil, Prec};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{
    cd_error_nm, quantize_checkpoint, rmse, ssim, LabelTransform, PebPredictor, QuantBudgets,
    SdmPeb, SdmPebConfig,
};

const MODEL_SEED: u64 = 1;
const CLIP_SEED: u64 = 7;

/// Serve-stage grid (matches the serve integration tests).
const SERVE_GRID: (usize, usize, usize) = (4, 16, 16);

fn pseudo(len: usize, salt: u32, lo: f32, hi: f32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            lo + (x as f32 / u32::MAX as f32) * (hi - lo)
        })
        .collect()
}

/// Repeat-min wall time of one call of `f` (single-core discipline: the
/// minimum over `reps` repetitions rejects scheduler noise).
fn min_time(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // untimed warmup: caches, page tables, pool buffers
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// GEMM shape under test: the im2col-style deep-K panel (`bf16`'s
/// narrow-packed B panels stream at half the bytes, which is where the
/// storage win pays off). Overridable as `PEB_BENCH_GEMM_SHAPE=m,k,n`.
fn gemm_shape() -> (usize, usize, usize) {
    if let Ok(s) = std::env::var("PEB_BENCH_GEMM_SHAPE") {
        let d: Vec<usize> = s.split(',').filter_map(|v| v.trim().parse().ok()).collect();
        if let [m, k, n] = d[..] {
            return (m, k, n);
        }
    }
    (256, 2048, 256)
}

/// GEMM through the deployment path — `matmul_par` with the precision
/// latched via `with_prec`, panels fanned out over the ambient thread
/// pool. This is the regime the bf16 storage was designed for: with
/// several cores streaming packed panels through a shared cache, the
/// half-width bf16 panels halve that traffic. On a single compute-bound
/// core the same kernel pays the widening arithmetic with no bandwidth
/// to reclaim, so bf16 < f32 there is expected (the perf gate below is
/// hardware-gated accordingly). int8 quantizes the weight matrix once
/// per multiply and row-quantizes activations inside the call.
fn bench_gemm_prec() -> (f64, f64, f64) {
    let (m, k, n) = gemm_shape();
    let a = pseudo(m * k, 1, -1.0, 1.0);
    let b = pseudo(k * n, 2, -1.0, 1.0);
    let mut out = vec![0f32; m * n];
    let flops = 2.0 * (m * k * n) as f64;
    let mut run = |p: Prec| {
        min_time(8, || {
            peb_simd::with_prec(p, || {
                peb_tensor::kernels::matmul_par(&a, &b, &mut out, m, k, n);
            });
        })
    };
    let f32_s = run(Prec::F32);
    let bf16_s = run(Prec::Bf16);
    let int8_s = run(Prec::Int8);
    (
        flops / f32_s / 1e9,
        flops / bf16_s / 1e9,
        flops / int8_s / 1e9,
    )
}

/// Selective-scan forward recurrence over full lane groups, f32 vs the
/// bf16-state variant (int8 keeps the scan in f32 by design).
fn bench_scan_prec() -> (f64, f64) {
    let (l, ch, n) = (256usize, 64usize, 16usize);
    let u = pseudo(l * ch, 3, -1.0, 1.0);
    let delta = pseudo(l * ch, 4, 0.05, 0.5);
    let a = pseudo(ch * n, 5, -1.5, -0.2);
    let b = pseudo(l * n, 6, -1.0, 1.0);
    let c = pseudo(l * n, 7, -1.0, 1.0);
    let d = pseudo(ch, 8, -1.0, 1.0);
    let mut y = vec![0f32; l * ch];
    let flops = 12.0 * (l * ch * n) as f64;
    let f32_s = min_time(16, || {
        let ys = UnsafeSlice::new(&mut y);
        let mut apack = Vec::new();
        let mut h = vec![0f32; n * 8];
        for ci0 in (0..ch).step_by(8) {
            scan::pack_a_lanes8(&a, n, ci0, &mut apack);
            h.iter_mut().for_each(|v| *v = 0.0);
            // SAFETY: single-threaded; lane groups are disjoint.
            unsafe {
                scan::scan_forward_lanes8(
                    &u,
                    &delta,
                    &apack,
                    &b,
                    &c,
                    &d[ci0..],
                    &mut h,
                    &ys,
                    None,
                    l,
                    ch,
                    n,
                    ci0,
                );
            }
        }
    });
    let bf16_s = min_time(16, || {
        let ys = UnsafeSlice::new(&mut y);
        let mut apack16 = Vec::new();
        let mut h16 = vec![0u16; n * 8];
        for ci0 in (0..ch).step_by(8) {
            scan::pack_a_lanes8_bf16(&a, n, ci0, &mut apack16);
            h16.iter_mut().for_each(|v| *v = 0);
            // SAFETY: single-threaded; lane groups are disjoint.
            unsafe {
                scan::scan_forward_lanes8_bf16(
                    &u,
                    &delta,
                    &apack16,
                    &b,
                    &c,
                    &d[ci0..],
                    &mut h16,
                    &ys,
                    None,
                    l,
                    ch,
                    n,
                    ci0,
                );
            }
        }
    });
    (flops / f32_s / 1e9, flops / bf16_s / 1e9)
}

/// Explicit diffusion stencil over a cache-exceeding volume, mirroring
/// one `explicit_step`: the f32 path freezes a full-width copy of the
/// pre-step field, the bf16 path freezes a half-width narrowed copy —
/// both the freeze and the slice updates are in the timed region, so
/// the comparison includes exactly the per-step costs each path pays.
fn bench_stencil_prec() -> (f64, f64) {
    let (nz, ny, nx) = (32usize, 256usize, 256usize);
    let field = pseudo(nz * ny * nx, 9, 0.0, 1.0);
    let p = stencil::StencilParams {
        rx: 0.11,
        ry: 0.11,
        rz: 0.2,
        robin_top: Some((0.03, 0.0)),
    };
    let plane = ny * nx;
    let mut dst = vec![0f32; nz * ny * nx];
    // 6-point Laplacian + Euler update: ~10 flops per cell.
    let flops = 10.0 * (nz * ny * nx) as f64;
    let mut src32 = vec![0f32; nz * ny * nx];
    let f32_s = min_time(16, || {
        src32.copy_from_slice(&field);
        for z in 0..nz {
            stencil::explicit_slice(
                &src32,
                &mut dst[z * plane..(z + 1) * plane],
                z,
                nz,
                ny,
                nx,
                p,
            );
        }
    });
    let mut src16 = Vec::new();
    let bf16_s = min_time(16, || {
        bf16::narrow_slice(&field, &mut src16);
        for z in 0..nz {
            stencil::explicit_slice_bf16(
                &src16,
                &mut dst[z * plane..(z + 1) * plane],
                z,
                nz,
                ny,
                nx,
                p,
            );
        }
    });
    (flops / f32_s / 1e9, flops / bf16_s / 1e9)
}

/// One serve load stage: `conns` closed-loop clients against `addr`,
/// all requests at `prec`. The first `warmup` of traffic keeps the
/// sockets hot but is discarded; only requests issued inside the
/// measured window count (same discipline as `bench_serve`).
fn serve_stage(
    addr: std::net::SocketAddr,
    prec: Prec,
    conns: usize,
    warmup: Duration,
    window: Duration,
) -> (f64, f64) {
    let stop = Arc::new(AtomicBool::new(false));
    let measure = Arc::new(AtomicBool::new(false));
    let done = Arc::new(AtomicU64::new(0));
    let mut lat_handles = Vec::new();
    for i in 0..conns {
        let stop = Arc::clone(&stop);
        let measure = Arc::clone(&measure);
        let done = Arc::clone(&done);
        lat_handles.push(
            std::thread::Builder::new()
                .name(format!("prec-load-{i}"))
                .spawn(move || {
                    let (d, h, w) = SERVE_GRID;
                    let clip = Tensor::from_vec(
                        (0..d * h * w)
                            .map(|j| ((j + i) as f32 * 0.017).sin() * 0.4 + 0.5)
                            .collect(),
                        &[d, h, w],
                    )
                    .expect("clip");
                    let mut client = Client::connect(addr).expect("connect");
                    let mut lats = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let counted = measure.load(Ordering::Acquire);
                        let t = Instant::now();
                        if client.infer_prec(&clip, prec).is_ok() && counted {
                            lats.push(t.elapsed().as_secs_f64());
                            done.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lats
                })
                .expect("spawn"),
        );
    }
    std::thread::sleep(warmup);
    measure.store(true, Ordering::Release);
    let t0 = Instant::now();
    std::thread::sleep(window);
    measure.store(false, Ordering::Release);
    let measured = t0.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    let mut lats: Vec<f64> = Vec::new();
    for h in lat_handles {
        lats.extend(h.join().expect("load thread"));
    }
    lats.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let qps = done.load(Ordering::Relaxed) as f64 / measured;
    let p99 = if lats.is_empty() {
        0.0
    } else {
        lats[((lats.len() - 1) as f64 * 0.99) as usize] * 1e3
    };
    (qps, p99)
}

#[allow(clippy::too_many_lines)]
fn main() {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let strict = std::env::var("PEB_BENCH_STRICT").as_deref() == Ok("1");
    let gates_apply = strict || cores >= 4;
    let gate_skip_reason = if gates_apply {
        "null".to_string()
    } else {
        format!("\"hardware_cores {cores} < 4 and PEB_BENCH_STRICT unset\"")
    };
    println!(
        "== bench_prec (dispatch: {}, cores: {cores}, perf gates: {gates_apply}) ==",
        peb_simd::level().name()
    );

    // ---- per-kernel repeat-min throughput -------------------------------
    let (gemm_f32, gemm_bf16, gemm_int8) = bench_gemm_prec();
    let (scan_f32, scan_bf16) = bench_scan_prec();
    let (sten_f32, sten_bf16) = bench_stencil_prec();
    println!("  gemm    f32 {gemm_f32:7.2}  bf16 {gemm_bf16:7.2}  int8 {gemm_int8:7.2} GFLOP/s");
    println!("  scan    f32 {scan_f32:7.2}  bf16 {scan_bf16:7.2} GFLOP/s");
    println!("  stencil f32 {sten_f32:7.2}  bf16 {sten_bf16:7.2} GFLOP/s");

    // ---- end-to-end inference per precision -----------------------------
    // Predict-only (the serving workload): optics + Dill produce the
    // acid field once, then the same untrained-but-seeded model runs at
    // each precision level.
    let grid = Grid::new(64, 64, 16, 4.0, 4.0, 6.25).expect("grid");
    let clip = MaskConfig::demo(grid.nx).generate(CLIP_SEED).expect("clip");
    let flow = LithoFlow::new(grid);
    let aerial = flow.optics.aerial_image(&grid, &clip).expect("aerial");
    let acid0 = flow.dill.photoacid(&aerial);
    let mut rng = StdRng::seed_from_u64(MODEL_SEED);
    let model = SdmPeb::new(
        SdmPebConfig::for_grid((grid.nz, grid.ny, grid.nx)),
        &mut rng,
    );

    let mut e2e_s = [0f64; 3];
    let mut preds: Vec<Tensor> = Vec::new();
    for (i, p) in [Prec::F32, Prec::Bf16, Prec::Int8].into_iter().enumerate() {
        e2e_s[i] = min_time(3, || {
            let y = peb_simd::with_prec(p, || model.predict(&acid0));
            std::hint::black_box(&y);
        });
        preds.push(peb_simd::with_prec(p, || model.predict(&acid0)));
    }
    println!(
        "  e2e infer  f32 {:.4}s  bf16 {:.4}s ({:.2}x)  int8 {:.4}s ({:.2}x)",
        e2e_s[0],
        e2e_s[1],
        e2e_s[0] / e2e_s[1],
        e2e_s[2],
        e2e_s[0] / e2e_s[2]
    );

    // ---- metric-delta gates (always enforced) ---------------------------
    // Table-II-style deltas of each reduced-precision prediction against
    // the f32 prediction: RMSE and SSIM in label space, CD error through
    // the full decode → develop → metrology chain. Budgets are absolute
    // build-failing thresholds, not hardware-relative ratios, so they
    // are enforced on every machine.
    let label = LabelTransform {
        kc: flow.peb.kc,
        ..LabelTransform::paper()
    };
    let mut deltas = Vec::new();
    let (_, _, cds_f32) = flow
        .develop(&label.decode(&preds[0]), &clip)
        .expect("develop f32");
    // Budgets are relative to the f32 prediction's value range, so the
    // thresholds track the field scale rather than its absolute units.
    let (lo, hi) = preds[0]
        .data()
        .iter()
        .fold((f32::INFINITY, f32::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    let range = (hi - lo).max(1e-6);
    for (i, (name, max_rmse, min_ssim, max_cd_nm)) in [
        ("bf16", 0.01f32, 0.995f32, 1.0f32),
        ("int8", 0.05, 0.98, 2.5),
    ]
    .into_iter()
    .enumerate()
    {
        let pred = &preds[i + 1];
        let r = rmse(pred, &preds[0]) / range;
        let s = ssim(pred, &preds[0]);
        let (_, _, cds) = flow
            .develop(&label.decode(pred), &clip)
            .expect("develop reduced");
        let cd = cd_error_nm(&cds, &cds_f32);
        let cd_worst = cd.x_nm.max(cd.y_nm);
        println!(
            "  metric-delta {name}: rmse {r:.3e} (<= {max_rmse:.0e}), ssim {s:.5} (>= {min_ssim}), cd {cd_worst:.3}nm (<= {max_cd_nm})"
        );
        assert!(
            r <= max_rmse,
            "{name} RMSE vs f32 {r} exceeds the {max_rmse} budget"
        );
        assert!(
            s >= min_ssim,
            "{name} SSIM vs f32 {s} under the {min_ssim} budget"
        );
        assert!(
            cd_worst <= max_cd_nm,
            "{name} CD delta vs f32 {cd_worst}nm exceeds the {max_cd_nm}nm budget"
        );
        deltas.push(format!(
            "{{\"prec\":\"{name}\",\"rmse\":{r:.6e},\"max_rmse\":{max_rmse},\"ssim\":{s:.6},\"min_ssim\":{min_ssim},\"cd_x_nm\":{:.4},\"cd_y_nm\":{:.4},\"max_cd_nm\":{max_cd_nm},\"pass\":true}}",
            cd.x_nm, cd.y_nm
        ));
    }

    // ---- memory footprint per precision ---------------------------------
    let f32_bytes: usize = model
        .parameters()
        .iter()
        .map(|p| p.value_clone().data().len() * 4)
        .sum();
    let bf16_bytes = f32_bytes / 2;
    let params: Vec<Tensor> = model.parameters().iter().map(|p| p.value_clone()).collect();
    let n_params = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 0,
        seed: MODEL_SEED,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n_params],
        opt_v: vec![None; n_params],
        quant: None,
    };
    let budgets = QuantBudgets {
        max_rmse: 0.5,
        min_ssim: 0.0,
    };
    let (_, qreport) = quantize_checkpoint(&model, &ckpt, std::slice::from_ref(&acid0), budgets)
        .expect("PTQ calibration");
    let int8_bytes = qreport.quant_bytes;
    println!(
        "  memory  f32 {f32_bytes}B  bf16 {bf16_bytes}B  int8 {int8_bytes}B ({:.2}x smaller)",
        f32_bytes as f64 / int8_bytes as f64
    );
    assert!(
        int8_bytes < f32_bytes / 2,
        "int8 PTQ storage {int8_bytes}B must beat half the f32 footprint {f32_bytes}B"
    );

    // ---- serve QPS / p99, f32 vs int8 -----------------------------------
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        grid: SERVE_GRID,
        max_batch: 8,
        max_wait_us: 200,
        queue_cap: 64,
        conn_workers: 2,
        ..ServeConfig::default()
    })
    .expect("serve start");
    let addr = server.addr();
    let conns = 2usize;
    let warmup = Duration::from_millis(300);
    let window = Duration::from_millis(1200);
    let (qps_f32, p99_f32) = serve_stage(addr, Prec::F32, conns, warmup, window);
    let (qps_int8, p99_int8) = serve_stage(addr, Prec::Int8, conns, warmup, window);
    server.shutdown();
    let serve_ratio = qps_int8 / qps_f32.max(1e-9);
    println!(
        "  serve   f32 {qps_f32:7.1} qps / p99 {p99_f32:6.2}ms   int8 {qps_int8:7.1} qps / p99 {p99_int8:6.2}ms ({serve_ratio:.2}x)"
    );

    // ---- perf gates (hardware-gated) ------------------------------------
    let gemm_ratio = gemm_bf16 / gemm_f32.max(1e-9);
    if gates_apply {
        assert!(
            gemm_ratio >= 1.4,
            "bf16 GEMM at {gemm_ratio:.2}x f32 is under the 1.4x gate"
        );
        assert!(
            serve_ratio >= 1.3,
            "int8 serve at {serve_ratio:.2}x f32 QPS is under the 1.3x gate"
        );
        println!("  perf gates: bf16 gemm {gemm_ratio:.2}x (>= 1.4), int8 serve {serve_ratio:.2}x (>= 1.3)");
    } else {
        println!("  perf gates skipped: {gate_skip_reason}");
    }

    // ---- emit ------------------------------------------------------------
    let json = format!(
        "{{\n  \"bench\": \"prec\",\n  \"dispatch\": \"{}\",\n  \"hardware_cores\": {cores},\n  \"perf_gates_enforced\": {gates_apply},\n  \"gate_skip_reason\": {gate_skip_reason},\n  \"kernels\": {{\n    \"gemm_gflops\": {{\"f32\": {gemm_f32:.3}, \"bf16\": {gemm_bf16:.3}, \"int8\": {gemm_int8:.3}, \"bf16_speedup\": {gemm_ratio:.3}, \"int8_speedup\": {:.3}}},\n    \"scan_gflops\": {{\"f32\": {scan_f32:.3}, \"bf16\": {scan_bf16:.3}, \"bf16_speedup\": {:.3}}},\n    \"stencil_gflops\": {{\"f32\": {sten_f32:.3}, \"bf16\": {sten_bf16:.3}, \"bf16_speedup\": {:.3}}}\n  }},\n  \"e2e_rows\": {{\"grid\": \"{}x{}x{}\", \"infer_s\": {{\"f32\": {:.6}, \"bf16\": {:.6}, \"int8\": {:.6}}}, \"bf16_speedup\": {:.3}, \"int8_speedup\": {:.3}}},\n  \"memory_bytes\": {{\"f32\": {f32_bytes}, \"bf16\": {bf16_bytes}, \"int8\": {int8_bytes}}},\n  \"metric_delta\": [{}],\n  \"serve_rows\": {{\"grid\": \"{}x{}x{}\", \"conns\": {conns}, \"warmup_s\": {:.3}, \"window_s\": {:.3}, \"stages\": [{{\"prec\": \"f32\", \"qps\": {qps_f32:.2}, \"p99_ms\": {p99_f32:.3}}}, {{\"prec\": \"int8\", \"qps\": {qps_int8:.2}, \"p99_ms\": {p99_int8:.3}}}], \"int8_qps_speedup\": {serve_ratio:.3}}}\n}}\n",
        peb_simd::level().name(),
        gemm_int8 / gemm_f32.max(1e-9),
        scan_bf16 / scan_f32.max(1e-9),
        sten_bf16 / sten_f32.max(1e-9),
        grid.nx,
        grid.ny,
        grid.nz,
        e2e_s[0],
        e2e_s[1],
        e2e_s[2],
        e2e_s[0] / e2e_s[1].max(1e-9),
        e2e_s[0] / e2e_s[2].max(1e-9),
        deltas.join(","),
        SERVE_GRID.2,
        SERVE_GRID.1,
        SERVE_GRID.0,
        warmup.as_secs_f64(),
        window.as_secs_f64(),
    );
    std::fs::write("BENCH_prec.json", &json).expect("write BENCH_prec.json");
    println!("wrote BENCH_prec.json");
}
