//! `simulate` — command-line front-end for the rigorous lithography flow.
//!
//! ```text
//! cargo run --release -p peb-bench --bin simulate -- \
//!     [--seed N] [--size PX] [--depth N] [--style regular|staggered|random|mixed] \
//!     [--dose SCALE] [--out DIR]
//! ```
//!
//! Runs mask → aerial → Dill → PEB → development → metrology on one clip
//! and writes every artefact (PGM layers, OBJ profile, CSV metrology) to
//! the output directory.

use std::path::PathBuf;

use peb_bench::viz::{vertical_section, write_csv, write_pgm};
use peb_guard::{Context, PebError};
use peb_litho::{
    measure_contact_profiles, resist_profile_obj, ClipStyle, Grid, LithoFlow, MaskConfig,
};

struct Args {
    seed: u64,
    size: usize,
    depth: usize,
    style: ClipStyle,
    dose: f32,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 42,
        size: 32,
        depth: 8,
        style: ClipStyle::Mixed,
        dose: 1.0,
        out: PathBuf::from("target/simulate"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--size" => {
                args.size = value("--size")?
                    .parse()
                    .map_err(|e| format!("--size: {e}"))?
            }
            "--depth" => {
                args.depth = value("--depth")?
                    .parse()
                    .map_err(|e| format!("--depth: {e}"))?
            }
            "--dose" => {
                args.dose = value("--dose")?
                    .parse()
                    .map_err(|e| format!("--dose: {e}"))?
            }
            "--style" => {
                args.style = match value("--style")?.as_str() {
                    "regular" => ClipStyle::RegularArray,
                    "staggered" => ClipStyle::Staggered,
                    "random" => ClipStyle::Random,
                    "mixed" => ClipStyle::Mixed,
                    other => return Err(format!("unknown style {other}")),
                }
            }
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                eprintln!(
                    "usage: simulate [--seed N] [--size PX] [--depth N] \
                     [--style regular|staggered|random|mixed] [--dose SCALE] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(args)
}

fn main() -> Result<(), PebError> {
    let args = parse_args().map_err(PebError::config)?;
    let grid = Grid::new(
        args.size,
        args.size,
        args.depth,
        4.0,
        4.0,
        80.0 / args.depth as f32,
    )
    .map_err(PebError::from)
    .ctx("constructing simulation grid")?;
    let mut mask_cfg = MaskConfig::demo(grid.nx);
    mask_cfg.style = args.style;
    let clip = mask_cfg
        .generate(args.seed)
        .map_err(PebError::from)
        .ctx("generating mask clip")?;
    let mut flow = LithoFlow::new(grid);
    flow.dill.c_dose *= args.dose;
    eprintln!(
        "[simulate] clip seed {} ({:?}, {} contacts), grid {}x{}x{}, dose x{}",
        args.seed,
        clip.style,
        clip.contacts.len(),
        grid.nx,
        grid.ny,
        grid.nz,
        args.dose
    );
    let sim = flow
        .run(&clip)
        .map_err(PebError::from)
        .ctx("rigorous lithography flow")?;
    std::fs::create_dir_all(&args.out)
        .with_ctx(|| format!("creating output dir {}", args.out.display()))?;

    // Layer images.
    let save_layer =
        |volume: &peb_tensor::Tensor, name: &str, layer: usize| -> Result<(), PebError> {
            let s = volume.shape().to_vec();
            let plane = volume
                .slice_axis(0, layer, layer + 1)
                .and_then(|t| t.reshape(&[s[1], s[2]]))
                .map_err(PebError::from)
                .with_ctx(|| format!("extracting layer {layer} of {name}"))?;
            write_pgm(
                &plane,
                plane.min_value(),
                plane.max_value(),
                &args.out.join(format!("{name}_z{layer}.pgm")),
            )
            .ctx("writing pgm")
        };
    for layer in [0, grid.nz - 1] {
        save_layer(&sim.aerial, "aerial", layer)?;
        save_layer(&sim.acid0, "acid0", layer)?;
        save_layer(&sim.inhibitor, "inhibitor", layer)?;
    }
    write_pgm(
        &vertical_section(&sim.inhibitor, grid.ny / 2),
        0.0,
        1.0,
        &args.out.join("inhibitor_xz.pgm"),
    )
    .ctx("writing pgm")?;

    // 3-D profile + metrology.
    let obj = resist_profile_obj(&grid, &sim.arrival, flow.mack.duration)
        .map_err(PebError::from)
        .ctx("meshing resist profile")?;
    std::fs::write(args.out.join("resist_profile.obj"), obj).ctx("writing resist_profile.obj")?;
    let profiles =
        measure_contact_profiles(&grid, &sim.arrival, flow.mack.duration, &clip.contacts)
            .map_err(PebError::from)
            .ctx("measuring contact profiles")?;
    write_csv(
        &[
            ("cd_x_nm", sim.cds.iter().map(|c| c.cd_x_nm).collect()),
            ("cd_y_nm", sim.cds.iter().map(|c| c.cd_y_nm).collect()),
            ("top_cd_nm", profiles.iter().map(|p| p.top_cd_nm).collect()),
            (
                "bottom_cd_nm",
                profiles.iter().map(|p| p.bottom_cd_nm).collect(),
            ),
            (
                "sidewall_deg",
                profiles.iter().map(|p| p.sidewall_angle_deg).collect(),
            ),
        ],
        &args.out.join("metrology.csv"),
    )
    .ctx("writing metrology.csv")?;

    println!(
        "[simulate] PEB {:.2?}, total {:.2?}; {} contacts open; artefacts in {}",
        sim.peb_elapsed,
        sim.total_elapsed,
        sim.cds.iter().filter(|c| c.open).count(),
        args.out.display()
    );

    peb_bench::emit_profile("simulate");
    Ok(())
}
