//! Regenerates **Fig. 9**: vertical (x–z) profiles of a centre contact
//! and a corner contact — ground truth, prediction and difference —
//! demonstrating consistent simulation along the depth direction.

use std::path::PathBuf;

use peb_bench::viz::{ascii_heatmap, vertical_section, write_pgm};
use peb_bench::{prepare_dataset, prepare_flow, train_models, ModelKind};
use peb_data::ExperimentScale;
use peb_guard::{Context, PebError};

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    eprintln!("[fig9] scale = {}", scale.name());
    let dataset = prepare_dataset(scale)?;
    let flow = prepare_flow(scale);
    let trained = train_models(&[ModelKind::SdmPeb], &dataset, scale.epochs())?;
    let model = &trained[0].model;

    let sample = &dataset.test[0];
    let stats = peb_data::LabelStats::from_dataset(&dataset);
    let pred = peb_bench::predict_inhibitor(model.as_ref(), sample, flow.peb.kc, &stats);
    let truth = &sample.inhibitor;

    // Centre contact: closest to the clip centre; corner contact: the
    // closest to (0, 0) — the red/blue boxes of Fig. 8.
    let (h, w) = (dataset.grid.ny as f32, dataset.grid.nx as f32);
    let centre = sample
        .clip
        .contacts
        .iter()
        .min_by(|a, b| {
            let da = (a.cy - h / 2.0).powi(2) + (a.cx - w / 2.0).powi(2);
            let db = (b.cy - h / 2.0).powi(2) + (b.cx - w / 2.0).powi(2);
            da.total_cmp(&db)
        })
        .expect("contacts");
    let corner = sample
        .clip
        .contacts
        .iter()
        .min_by(|a, b| (a.cy.powi(2) + a.cx.powi(2)).total_cmp(&(b.cy.powi(2) + b.cx.powi(2))))
        .expect("contacts");

    let out = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out).ctx("creating figures dir")?;

    for (name, contact) in [("centre", centre), ("corner", corner)] {
        let y = contact.cy.round() as usize;
        let gt = vertical_section(truth, y);
        let pr = vertical_section(&pred, y);
        let diff = &pr - &gt;
        println!("\n== Fig. 9 {name} contact (row y = {y}) ==");
        println!("(a) ground truth:");
        print!("{}", ascii_heatmap(&gt));
        println!("(b) prediction:");
        print!("{}", ascii_heatmap(&pr));
        let max_abs = diff.abs_t().max_value();
        println!("(c) difference: max |diff| = {max_abs:.3}");
        write_pgm(&gt, 0.0, 1.0, &out.join(format!("fig9_{name}_truth.pgm"))).ctx("writing pgm")?;
        write_pgm(&pr, 0.0, 1.0, &out.join(format!("fig9_{name}_pred.pgm"))).ctx("writing pgm")?;
        write_pgm(&diff, -0.1, 0.1, &out.join(format!("fig9_{name}_diff.pgm")))
            .ctx("writing pgm")?;
    }

    // Depthwise-consistency shape check: per-layer NRMSE should not blow
    // up with depth (the SDM unit's selling point).
    let nz = dataset.grid.nz;
    println!("\nper-layer inhibitor RMSE (depth consistency):");
    for k in 0..nz {
        let gt = truth.slice_axis(0, k, k + 1).expect("slice");
        let pr = pred.slice_axis(0, k, k + 1).expect("slice");
        println!("  layer {k:>2}: {:.4}", sdm_peb::rmse(&pr, &gt));
    }
    println!("[fig9] wrote target/figures/fig9_*.pgm");

    peb_bench::emit_profile("fig9");
    Ok(())
}
