//! Eager-vs-replay benchmark for execution plans: emits
//! `BENCH_plan.json`.
//!
//! For each grid tier the same model and clip run the eager `predict`
//! path and the recorded `Plan::replay` path under repeat-min timing
//! (one discarded warmup repetition each, minimum over the measured
//! repetitions — the repo's standard discipline for single-core boxes
//! where the mean is scheduler noise). Replay must be bitwise identical
//! to eager — the digest check always runs, on every repetition — and
//! allocation-free: the `pool_misses` and `tensor_allocs` counter
//! deltas over a measured replay must both be zero.
//!
//! A second section drives the in-process serving stack through one
//! closed-loop client with the plan cache disabled, then enabled
//! (`PEB_PLAN` latch), reporting QPS/p99 for both and the engine's plan
//! cache counters.
//!
//! Speed-ratio gates (replay no slower than eager; planned serving no
//! slower than unplanned) are hardware-gated: enforced at ≥ 4 cores or
//! under `PEB_BENCH_STRICT=1`, otherwise skipped with a machine-readable
//! `gate_skip_reason`. Identity and zero-alloc asserts are *never*
//! skipped.
//!
//! Knobs: `PEB_PLAN_BENCH_TIERS` (comma list of `HxWxD` names, default
//! `64x64x16,256x256x32,512x512x80`), `PEB_PLAN_BENCH_REPEATS`
//! (measured repetitions per path, default 3), `PEB_PLAN_BENCH_SECS`
//! (serve window seconds, default 1.5), `PEB_PLAN_BENCH_WARMUP_SECS`
//! (serve warmup, default 0.5).

use std::sync::atomic::Ordering;
use std::time::{Duration, Instant};

use peb_serve::{Client, ServeConfig, Server};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{InferPlan, PebPredictor, SdmPeb, SdmPebConfig};

/// Tier name (paper convention `H x W x D`) → internal `(d, h, w)`.
fn parse_tier(name: &str) -> Option<(usize, usize, usize)> {
    let mut it = name.trim().split('x');
    let h: usize = it.next()?.parse().ok()?;
    let w: usize = it.next()?.parse().ok()?;
    let d: usize = it.next()?.parse().ok()?;
    if it.next().is_some() || h == 0 || w == 0 || d == 0 {
        return None;
    }
    Some((d, h, w))
}

struct TierRow {
    name: String,
    voxels: usize,
    eager_min_s: f64,
    replay_min_s: f64,
    ratio: f64,
    arena_bytes: usize,
    logical_bytes: usize,
    regions: usize,
    planned_allocs: usize,
    served: u32,
    escaped: u32,
}

fn counter(name: &str) -> u64 {
    peb_obs::snapshot().counter(name)
}

fn bench_tier(name: &str, dims: (usize, usize, usize), repeats: usize) -> TierRow {
    let (d, h, w) = dims;
    let mut rng = StdRng::seed_from_u64(42);
    let model = SdmPeb::new(SdmPebConfig::tiny(dims), &mut rng);
    let clip = Tensor::rand_uniform(&[d, h, w], 0.05, 0.9, &mut rng);

    // Eager path: one discarded warmup, then repeat-min.
    let eager_digest = model.predict(&clip).bit_digest();
    let mut eager_min = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = Instant::now();
        let out = model.predict(&clip);
        eager_min = eager_min.min(t0.elapsed().as_secs_f64());
        assert_eq!(out.bit_digest(), eager_digest, "eager run not reproducible");
    }

    // Recorded path: `record` runs its own warmup + recorded pass; one
    // more discarded replay warms the pool buckets escapes land in.
    let (plan, recorded) = InferPlan::record(&model, &clip);
    assert_eq!(
        recorded.bit_digest(),
        eager_digest,
        "{name}: recording run diverged from eager"
    );
    drop(plan.predict(&model, &clip));

    let mut replay_min = f64::INFINITY;
    for rep in 0..repeats {
        let t0 = Instant::now();
        let (out, outcome) = plan.predict(&model, &clip);
        replay_min = replay_min.min(t0.elapsed().as_secs_f64());
        assert_eq!(
            out.bit_digest(),
            eager_digest,
            "{name}: replay {rep} diverged from eager"
        );
        assert!(
            outcome.complete,
            "{name}: replay {rep} incomplete: {outcome:?}"
        );
    }

    // Zero-alloc assert on a dedicated (untimed) replay: counters need
    // trace collection on, which would perturb the timed repetitions.
    peb_obs::set_mode(peb_obs::TraceMode::Summary);
    let (m0, a0) = (counter("pool_misses"), counter("tensor_allocs"));
    let (out, outcome) = plan.predict(&model, &clip);
    let (m1, a1) = (counter("pool_misses"), counter("tensor_allocs"));
    peb_obs::set_mode(peb_obs::TraceMode::Off);
    assert_eq!(
        out.bit_digest(),
        eager_digest,
        "{name}: counted replay diverged"
    );
    assert!(
        outcome.complete,
        "{name}: counted replay incomplete: {outcome:?}"
    );
    assert_eq!(m1 - m0, 0, "{name}: replay missed the pool");
    assert_eq!(a1 - a0, 0, "{name}: replay allocated fresh heap");
    drop(out);

    println!(
        "  {name:>12}  eager {:>9.2}ms  replay {:>9.2}ms  ({:.3}x)  arena {:.1} MiB (logical {:.1} MiB, {} regions, {} checkouts)",
        eager_min * 1e3,
        replay_min * 1e3,
        replay_min / eager_min,
        plan.plan().arena_bytes() as f64 / (1024.0 * 1024.0),
        plan.plan().logical_bytes() as f64 / (1024.0 * 1024.0),
        plan.plan().region_count(),
        plan.plan().planned_allocs(),
    );
    TierRow {
        name: name.to_string(),
        voxels: d * h * w,
        eager_min_s: eager_min,
        replay_min_s: replay_min,
        ratio: replay_min / eager_min,
        arena_bytes: plan.plan().arena_bytes(),
        logical_bytes: plan.plan().logical_bytes(),
        regions: plan.plan().region_count(),
        planned_allocs: plan.plan().planned_allocs(),
        served: outcome.served,
        escaped: outcome.escaped,
    }
}

struct ServeRow {
    plan_cache: bool,
    requests: u64,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    plan_hits: u64,
    plan_misses: u64,
    arena_hwm_bytes: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

const SERVE_GRID: (usize, usize, usize) = (4, 16, 16);

fn serve_clip() -> Tensor {
    let (d, h, w) = SERVE_GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| (i as f32 * 0.017).sin() * 0.4 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

/// One closed-loop serving window through a single keep-alive client,
/// with the plan cache latched on or off for the whole server lifetime.
fn bench_serve(plan_cache: bool, warmup: Duration, window: Duration) -> ServeRow {
    peb_plan::set_enabled(plan_cache);
    let mut config = ServeConfig::from_env();
    config.addr = "127.0.0.1:0".into();
    config.grid = SERVE_GRID;
    config.seed = 42;
    let server = Server::start(config).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let clip = serve_clip();
    let digest = {
        let model = SdmPeb::new(
            SdmPebConfig::tiny(SERVE_GRID),
            &mut StdRng::seed_from_u64(42),
        );
        model.predict(&clip).bit_digest()
    };

    let t_warm = Instant::now();
    while t_warm.elapsed() < warmup {
        let y = client.infer(&clip).expect("warmup infer");
        assert_eq!(y.bit_digest(), digest, "served bits diverged in warmup");
    }
    let mut lat_us: Vec<f64> = Vec::new();
    let t0 = Instant::now();
    while t0.elapsed() < window {
        let r0 = Instant::now();
        let y = client.infer(&clip).expect("infer");
        lat_us.push(r0.elapsed().as_secs_f64() * 1e6);
        assert_eq!(
            y.bit_digest(),
            digest,
            "served bits diverged (plan_cache={plan_cache})"
        );
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let stats = server.handle().stats();
    let row = ServeRow {
        plan_cache,
        requests: lat_us.len() as u64,
        qps: lat_us.len() as f64 / elapsed,
        p50_us: 0.0,
        p99_us: 0.0,
        plan_hits: stats.plan_hits.load(Ordering::Relaxed),
        plan_misses: stats.plan_misses.load(Ordering::Relaxed),
        arena_hwm_bytes: stats.arena_hwm_bytes.load(Ordering::Relaxed),
    };
    server.shutdown();
    peb_plan::set_enabled(true);
    lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    ServeRow {
        p50_us: percentile(&lat_us, 50.0),
        p99_us: percentile(&lat_us, 99.0),
        ..row
    }
}

fn main() {
    let repeats: usize = std::env::var("PEB_PLAN_BENCH_REPEATS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3);
    let tiers_env = std::env::var("PEB_PLAN_BENCH_TIERS")
        .unwrap_or_else(|_| "64x64x16,256x256x32,512x512x80".to_string());
    let window_s: f64 = std::env::var("PEB_PLAN_BENCH_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let warmup_s: f64 = std::env::var("PEB_PLAN_BENCH_WARMUP_SECS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.5);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    peb_pool::set_enabled(true);
    peb_plan::set_enabled(true);

    println!(
        "bench_plan: tiers={tiers_env} repeats={repeats} cores={cores} level={}",
        peb_simd::level().name()
    );
    let mut rows: Vec<TierRow> = Vec::new();
    for name in tiers_env.split(',').filter(|s| !s.trim().is_empty()) {
        let dims = parse_tier(name)
            .unwrap_or_else(|| panic!("bad tier {name:?}: expected HxWxD, e.g. 64x64x16"));
        rows.push(bench_tier(name.trim(), dims, repeats));
    }

    println!("  serve: plan cache off vs on ({window_s}s window)");
    let warmup = Duration::from_secs_f64(warmup_s);
    let window = Duration::from_secs_f64(window_s);
    let off = bench_serve(false, warmup, window);
    let on = bench_serve(true, warmup, window);
    for r in [&off, &on] {
        println!(
            "    plan_cache={:<5} qps={:>8.1} p50={:>8.1}us p99={:>9.1}us hits={} misses={} arena_hwm={}",
            r.plan_cache, r.qps, r.p50_us, r.p99_us, r.plan_hits, r.plan_misses, r.arena_hwm_bytes
        );
    }
    assert_eq!(
        off.plan_hits, 0,
        "latched-off serving must never hit a plan"
    );
    assert!(on.plan_hits > 0, "planned serving must replay cached plans");
    assert!(
        on.arena_hwm_bytes > 0,
        "planned serving must report arena high water"
    );

    // Speed-ratio gates: meaningless where the client, engine and
    // kernels fight over one core, so they require ≥ 4 cores or
    // PEB_BENCH_STRICT=1. Identity + zero-alloc asserts already ran
    // unconditionally above.
    let strict = std::env::var("PEB_BENCH_STRICT").as_deref() == Ok("1");
    let gates_apply = strict || cores >= 4;
    let gate_skip_reason = if gates_apply {
        "null".to_string()
    } else {
        format!("\"hardware_cores {cores} < 4 and PEB_BENCH_STRICT unset\"")
    };
    if gates_apply {
        for r in &rows {
            assert!(
                r.ratio <= 1.10,
                "{}: replay {:.3}x slower than eager (gate 1.10x)",
                r.name,
                r.ratio
            );
        }
        let serve_ratio = on.qps / off.qps.max(1e-9);
        assert!(
            serve_ratio >= 0.90,
            "plan cache cost throughput: {serve_ratio:.2}x of unplanned QPS"
        );
        println!("  ratio gates: replay <= 1.10x eager, planned QPS >= 0.90x unplanned — ok");
    } else {
        println!("  ratio gates skipped: {gate_skip_reason}");
    }

    let tier_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"tier\":\"{}\",\"voxels\":{},\"eager_min_s\":{:.6},\"replay_min_s\":{:.6},\"replay_vs_eager\":{:.4},\"arena_bytes\":{},\"logical_bytes\":{},\"regions\":{},\"planned_allocs\":{},\"served\":{},\"escaped\":{},\"digest_ok\":true,\"zero_alloc_replay\":true}}",
                r.name,
                r.voxels,
                r.eager_min_s,
                r.replay_min_s,
                r.ratio,
                r.arena_bytes,
                r.logical_bytes,
                r.regions,
                r.planned_allocs,
                r.served,
                r.escaped,
            )
        })
        .collect();
    let serve_json: Vec<String> = [&off, &on]
        .iter()
        .map(|r| {
            format!(
                "{{\"plan_cache\":{},\"requests\":{},\"qps\":{:.2},\"p50_us\":{:.1},\"p99_us\":{:.1},\"plan_hits\":{},\"plan_misses\":{},\"arena_hwm_bytes\":{}}}",
                r.plan_cache,
                r.requests,
                r.qps,
                r.p50_us,
                r.p99_us,
                r.plan_hits,
                r.plan_misses,
                r.arena_hwm_bytes
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"plan\",\n  \"dispatch_level\": \"{}\",\n  \"hardware_cores\": {},\n  \"repeats\": {},\n  \"timing\": \"repeat-min, warmup discarded\",\n  \"ratio_gates_enforced\": {},\n  \"gate_skip_reason\": {},\n  \"tiers\": [{}],\n  \"serve\": [{}]\n}}\n",
        peb_simd::level().name(),
        cores,
        repeats,
        gates_apply,
        gate_skip_reason,
        tier_json.join(","),
        serve_json.join(","),
    );
    std::fs::write("BENCH_plan.json", &json).expect("write BENCH_plan.json");
    println!("  wrote BENCH_plan.json");
}
