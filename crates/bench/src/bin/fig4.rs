//! Regenerates **Fig. 4**: vertical (x–z) visualisation of the photoacid
//! distribution at the initial stage and the inhibitor at the final
//! stage, showing the continuous, causal depthwise variation that
//! motivates the SDM unit.
//!
//! Outputs ASCII heatmaps to stdout plus PGM images and a CSV of the
//! depth profiles under `target/figures/`.

use std::path::PathBuf;

use peb_bench::viz::{ascii_heatmap, vertical_section, write_csv, write_pgm};
use peb_data::ExperimentScale;
use peb_litho::{LithoFlow, MaskConfig};

fn main() {
    let scale = ExperimentScale::from_env();
    let grid = scale.grid();
    let clip = MaskConfig::demo(grid.nx).generate(4242).expect("mask");
    let flow = LithoFlow::new(grid);
    eprintln!("[fig4] rigorous solve on one clip…");
    let sim = flow.run(&clip).expect("simulation");

    // Cut through the row of the first contact.
    let y = clip.contacts[0].cy.round() as usize;
    let acid_xz = vertical_section(&sim.acid0, y);
    let inhibitor_xz = vertical_section(&sim.inhibitor, y);

    println!("== Fig. 4(a): photoacid at the initial stage (x–z section, top row = surface) ==");
    print!("{}", ascii_heatmap(&acid_xz));
    println!("\n== Fig. 4(b): inhibitor at the final stage (x–z section) ==");
    print!("{}", ascii_heatmap(&inhibitor_xz));

    let out = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out).expect("figures dir");
    write_pgm(&acid_xz, 0.0, 1.0, &out.join("fig4_acid_xz.pgm")).expect("pgm");
    write_pgm(&inhibitor_xz, 0.0, 1.0, &out.join("fig4_inhibitor_xz.pgm")).expect("pgm");

    // Depth profiles through the contact centre: the smooth gradual
    // change the paper highlights.
    let x = clip.contacts[0].cx.round() as usize;
    let depth: Vec<f32> = (0..grid.nz).map(|k| grid.depth_of(k)).collect();
    let acid_profile: Vec<f32> = (0..grid.nz).map(|k| sim.acid0.get(&[k, y, x])).collect();
    let inhibitor_profile: Vec<f32> = (0..grid.nz)
        .map(|k| sim.inhibitor.get(&[k, y, x]))
        .collect();
    write_csv(
        &[
            ("depth_nm", depth),
            ("acid_initial", acid_profile.clone()),
            ("inhibitor_final", inhibitor_profile.clone()),
        ],
        &out.join("fig4_depth_profiles.csv"),
    )
    .expect("csv");

    // The depthwise continuity claim, quantified: successive layers
    // differ by bounded steps everywhere in the volume.
    let mut max_step = 0f32;
    for k in 1..grid.nz {
        let upper = sim.inhibitor.slice_axis(0, k, k + 1).expect("slice");
        let lower = sim.inhibitor.slice_axis(0, k - 1, k).expect("slice");
        max_step = max_step.max(upper.max_abs_diff(&lower));
    }
    println!(
        "\n[fig4] max layer-to-layer inhibitor step anywhere in the volume: {max_step:.3} \
         (continuous depthwise variation; acid/inhibitor profiles at the contact \
         centre are in the CSV)"
    );
    let _ = (acid_profile, inhibitor_profile);
    println!("[fig4] wrote target/figures/fig4_*.pgm and fig4_depth_profiles.csv");

    peb_bench::emit_profile("fig4");
}
