//! Regenerates **Table III**: the ablation study — Single Layer Encoder,
//! 2-D Scan, w/o Focal Loss, w/o Regularization vs the full SDM-PEB.

use peb_bench::{
    evaluate_model, prepare_dataset, prepare_flow, train_models_with, ModelKind, TrainOptions,
    PAPER_TABLE3,
};
use peb_data::ExperimentScale;
use peb_guard::PebError;

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    eprintln!("[table3] scale = {}", scale.name());
    let dataset = prepare_dataset(scale)?;
    let flow = prepare_flow(scale);

    let trained = train_models_with(
        &ModelKind::TABLE3,
        &dataset,
        scale.epochs(),
        &TrainOptions::from_args()?,
    )?;
    let rows: Vec<_> = trained
        .iter()
        .map(|t| {
            let mut row = evaluate_model(t.model.as_ref(), &dataset, &flow);
            row.name = t.kind.label().to_string(); // ablation label, not "SDM-PEB"
            row
        })
        .collect();

    println!("\n== Table III (paper reference) ==");
    println!(
        "{:<22} {:>10} {:>8} {:>7} {:>7}",
        "Methodology", "I-NRMSE%", "R-NRMSE%", "CDx/nm", "CDy/nm"
    );
    for (name, a, b, c, d) in PAPER_TABLE3 {
        println!("{name:<22} {a:>10.2} {b:>8.2} {c:>7.2} {d:>7.2}");
    }

    println!("\n== Table III (measured, scale={}) ==", scale.name());
    println!(
        "{:<22} {:>10} {:>8} {:>7} {:>7}",
        "Methodology", "I-NRMSE%", "R-NRMSE%", "CDx/nm", "CDy/nm"
    );
    for row in &rows {
        println!(
            "{:<22} {:>10.2} {:>8.2} {:>7.2} {:>7.2}",
            row.name, row.inhibitor_nrmse_pct, row.rate_nrmse_pct, row.cd_x_nm, row.cd_y_nm
        );
    }

    // Shape checks: the full model should beat every ablation.
    let full = rows.last().expect("five rows");
    let mut worse = 0;
    for row in &rows[..rows.len() - 1] {
        if row.inhibitor_nrmse_pct >= full.inhibitor_nrmse_pct {
            worse += 1;
        }
    }
    println!(
        "\n[shape] {worse}/4 ablations degrade inhibitor NRMSE vs the full model \
         (paper: 4/4)"
    );

    peb_bench::emit_profile("table3");
    Ok(())
}
