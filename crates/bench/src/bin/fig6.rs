//! Regenerates **Fig. 6**: value-range frequency histograms of (a) the
//! photoacid and (b) the inhibitor over the training set, exposing the
//! inhibitor's orders-of-magnitude imbalance that motivates the PEB
//! focal loss.

use peb_bench::prepare_dataset;
use peb_data::{value_histogram, ExperimentScale, HISTOGRAM_BIN_LABELS};
use peb_guard::PebError;

fn bar(frac: f64, width: usize) -> String {
    let n = (frac * width as f64).round() as usize;
    "#".repeat(n.min(width))
}

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    let dataset = prepare_dataset(scale)?;

    let acid_hist = value_histogram(dataset.train.iter().map(|s| &s.acid0));
    let inhibitor_hist = value_histogram(dataset.train.iter().map(|s| &s.inhibitor));

    println!("== Fig. 6(a): photoacid value-range frequencies (linear scale) ==");
    for (label, f) in HISTOGRAM_BIN_LABELS.iter().zip(acid_hist) {
        println!("{label:<12} {f:>8.4}  {}", bar(f, 50));
    }

    println!("\n== Fig. 6(b): inhibitor value-range frequencies (log scale, as in the paper) ==");
    for (label, f) in HISTOGRAM_BIN_LABELS.iter().zip(inhibitor_hist) {
        // Log-scale bar: map 1e-4..1 to 0..50 characters.
        let logbar = if f > 0.0 {
            ((f.log10() + 4.0) / 4.0).clamp(0.0, 1.0)
        } else {
            0.0
        };
        println!("{label:<12} {f:>9.5}  {}", bar(logbar, 50));
    }

    // The imbalance claim, quantified.
    let max = inhibitor_hist.iter().cloned().fold(0.0f64, f64::max);
    let min_nonzero = inhibitor_hist
        .iter()
        .cloned()
        .filter(|f| *f > 0.0)
        .fold(f64::INFINITY, f64::min);
    println!(
        "\n[fig6] inhibitor bin frequencies span {:.1} orders of magnitude \
         (paper: 'can even differ by several orders of magnitude')",
        (max / min_nonzero).log10()
    );

    peb_bench::emit_profile("fig6");
    Ok(())
}
