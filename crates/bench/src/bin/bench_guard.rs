//! Measures the cost of the `peb-guard` fault-tolerance layer on the
//! training loop and emits `BENCH_guard.json`.
//!
//! Two identical tiny SDM-PEB training runs — checkpointing off and
//! checkpointing every epoch — establish the end-to-end overhead, then
//! the checkpoint encode/save and load/decode paths are timed directly
//! against the real on-disk artifact. The benchmark asserts that (a) the
//! checkpointed run reproduces the plain run bitwise (the guard layer
//! must be numerically invisible) and (b) one atomic checkpoint write
//! costs less than 5% of one training epoch.

use std::path::PathBuf;
use std::time::Instant;

use peb_guard::{checkpoint_path, list_checkpoints, TrainCheckpoint};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{SdmPeb, SdmPebConfig, TrainConfig, TrainReport, Trainer};

const EPOCHS: usize = 6;
const SAVE_REPS: usize = 20;
const DIMS: (usize, usize, usize) = (2, 16, 16);

fn fresh_model() -> SdmPeb {
    let mut rng = StdRng::seed_from_u64(42);
    SdmPeb::new(SdmPebConfig::tiny(DIMS), &mut rng)
}

fn toy_data() -> Vec<(Tensor, Tensor)> {
    (0..16)
        .map(|s| {
            let mut r = StdRng::seed_from_u64(1000 + s);
            let acid = Tensor::rand_uniform(&[DIMS.0, DIMS.1, DIMS.2], 0.0, 0.9, &mut r);
            let label = acid.map(|a| 1.5 * a - 0.4);
            (acid, label)
        })
        .collect()
}

fn run_fit(dir: Option<PathBuf>) -> (f64, TrainReport) {
    let mut cfg = TrainConfig::quick(EPOCHS);
    cfg.accumulate = 2;
    cfg.guard.checkpoint_dir = dir;
    cfg.guard.checkpoint_every = 1;
    let model = fresh_model();
    let data = toy_data();
    let start = Instant::now();
    let report = Trainer::new(cfg).fit(&model, &data).expect("training run");
    (start.elapsed().as_secs_f64(), report)
}

fn loss_bits(r: &TrainReport) -> Vec<u32> {
    r.epoch_losses.iter().map(|l| l.to_bits()).collect()
}

fn main() {
    let dir = std::env::temp_dir().join(format!("peb_bench_guard_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create checkpoint dir");

    let (wall_off, report_off) = run_fit(None);
    let (wall_on, report_on) = run_fit(Some(dir.clone()));

    let identical = loss_bits(&report_off) == loss_bits(&report_on);
    let mean_epoch = wall_off / EPOCHS as f64;

    // Time the checkpoint encode+atomic-write and read+decode paths
    // directly on the newest real artifact of the run above.
    let newest = *list_checkpoints(&dir).first().expect("checkpoints written");
    let ckpt_file = checkpoint_path(&dir, newest);
    let ckpt_bytes = std::fs::metadata(&ckpt_file).expect("ckpt metadata").len();
    let ckpt = TrainCheckpoint::load(&ckpt_file).expect("load newest checkpoint");

    let scratch = dir.join("bench-save.bin");
    let start = Instant::now();
    for _ in 0..SAVE_REPS {
        ckpt.save(&scratch).expect("timed save");
    }
    let mean_save = start.elapsed().as_secs_f64() / SAVE_REPS as f64;
    let start = Instant::now();
    for _ in 0..SAVE_REPS {
        let _ = TrainCheckpoint::load(&scratch).expect("timed load");
    }
    let mean_load = start.elapsed().as_secs_f64() / SAVE_REPS as f64;
    std::fs::remove_dir_all(&dir).ok();

    let overhead = mean_save / mean_epoch;
    println!("== peb-guard benchmark (tiny SDM-PEB, {EPOCHS} epochs) ==");
    println!("  wall time   ckpt off: {wall_off:.3}s   ckpt every epoch: {wall_on:.3}s");
    println!(
        "  mean epoch: {:.3}ms   checkpoint save: {:.3}ms   load: {:.3}ms   ({ckpt_bytes} bytes)",
        1e3 * mean_epoch,
        1e3 * mean_save,
        1e3 * mean_load
    );
    println!(
        "  checkpoint overhead: {:.2}% of one epoch   bitwise identical on vs off: {identical}",
        100.0 * overhead
    );
    assert!(identical, "checkpointing changed the training trajectory");
    assert!(
        overhead < 0.05,
        "checkpoint save {:.3}ms exceeds 5% of epoch time {:.3}ms",
        1e3 * mean_save,
        1e3 * mean_epoch
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"tiny sdm-peb training, checkpoint every epoch\",\n",
            "  \"epochs\": {},\n",
            "  \"wall_seconds_ckpt_off\": {:.6},\n",
            "  \"wall_seconds_ckpt_on\": {:.6},\n",
            "  \"mean_epoch_seconds\": {:.6},\n",
            "  \"mean_checkpoint_save_seconds\": {:.6},\n",
            "  \"mean_checkpoint_load_seconds\": {:.6},\n",
            "  \"checkpoint_bytes\": {},\n",
            "  \"checkpoint_overhead_fraction_of_epoch\": {:.6},\n",
            "  \"bitwise_identical_ckpt_on_vs_off\": {}\n",
            "}}\n"
        ),
        EPOCHS,
        wall_off,
        wall_on,
        mean_epoch,
        mean_save,
        mean_load,
        ckpt_bytes,
        overhead,
        identical,
    );
    std::fs::write("BENCH_guard.json", &json).expect("write BENCH_guard.json");
    println!("  wrote BENCH_guard.json");
}
