//! Measures the `peb-simd` dispatch layer and emits `BENCH_simd.json`.
//!
//! Three microkernels are timed on both backends through the forced
//! `*_scalar` / `*_simd` entry points — packed GEMM, the selective-scan
//! lane recurrence, and the factored ADI line solve — plus the
//! end-to-end Table I micro training step (the `BENCH_pool.json`
//! workload) with the dispatch level forced to scalar and to the
//! detected best level. The run asserts the headline acceptance gates:
//! SIMD GEMM at ≥2× scalar GFLOP/s on AVX2 hardware, and bitwise
//! identity of the pipeline across 1 vs 4 threads with SIMD on.

use std::time::Instant;

use peb_litho::{Grid, LithoFlow, MaskConfig};
use peb_nn::{Adam, Optimizer, Parameterized};
use peb_par::UnsafeSlice;
use peb_simd::{elementwise as ew, gemm, scan, thomas};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

const STEPS: usize = 15;
const MODEL_SEED: u64 = 1;

fn pseudo(len: usize, salt: u32, lo: f32, hi: f32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let x = (i as u32).wrapping_mul(2654435761).wrapping_add(salt);
            lo + (x as f32 / u32::MAX as f32) * (hi - lo)
        })
        .collect()
}

/// Times `reps` calls of `f` and converts `flops_per_call` to GFLOP/s.
fn gflops(reps: usize, flops_per_call: f64, mut f: impl FnMut()) -> f64 {
    // One untimed call warms caches and the page tables.
    f();
    let start = Instant::now();
    for _ in 0..reps {
        f();
    }
    let wall = start.elapsed().as_secs_f64();
    reps as f64 * flops_per_call / wall / 1e9
}

/// Packed GEMM, both backends, on a square problem sized to stress the
/// register tile and the packing loop.
fn bench_gemm() -> (f64, f64) {
    let (m, k, n) = (256usize, 256usize, 256usize);
    let a = pseudo(m * k, 1, -1.0, 1.0);
    let b = pseudo(k * n, 2, -1.0, 1.0);
    let mut out = vec![0f32; m * n];
    let flops = 2.0 * (m * k * n) as f64;
    let scalar = gflops(4, flops, || gemm::gemm_scalar(&a, &b, &mut out, m, k, n));
    let simd = if peb_simd::detected() {
        gflops(16, flops, || {
            gemm::gemm_simd(&a, &b, &mut out, m, k, n);
        })
    } else {
        scalar
    };
    (scalar, simd)
}

/// Selective-scan forward recurrence over full lane groups.
fn bench_scan() -> (f64, f64) {
    let (l, ch, n) = (256usize, 64usize, 16usize);
    let u = pseudo(l * ch, 3, -1.0, 1.0);
    let delta = pseudo(l * ch, 4, 0.05, 0.5);
    let a = pseudo(ch * n, 5, -1.5, -0.2);
    let b = pseudo(l * n, 6, -1.0, 1.0);
    let c = pseudo(l * n, 7, -1.0, 1.0);
    let d = pseudo(ch, 8, -1.0, 1.0);
    let mut y = vec![0f32; l * ch];
    // exp + 2 fma + dot accumulation per (t, state, lane): ~12 flops.
    let flops = 12.0 * (l * ch * n) as f64;
    let mut run = |simd: bool| {
        let ys = UnsafeSlice::new(&mut y);
        let mut apack = Vec::new();
        let mut h = vec![0f32; n * 8];
        for ci0 in (0..ch).step_by(8) {
            scan::pack_a_lanes8(&a, n, ci0, &mut apack);
            h.iter_mut().for_each(|v| *v = 0.0);
            // SAFETY: single-threaded; lane groups are disjoint.
            unsafe {
                if simd {
                    scan::scan_forward_lanes8_simd(
                        &u,
                        &delta,
                        &apack,
                        &b,
                        &c,
                        &d[ci0..],
                        &mut h,
                        &ys,
                        None,
                        l,
                        ch,
                        n,
                        ci0,
                    );
                } else {
                    scan::scan_forward_lanes8_scalar(
                        &u,
                        &delta,
                        &apack,
                        &b,
                        &c,
                        &d[ci0..],
                        &mut h,
                        &ys,
                        None,
                        l,
                        ch,
                        n,
                        ci0,
                    );
                }
            }
        }
    };
    let scalar = gflops(8, flops, || run(false));
    let simd = if peb_simd::detected() {
        gflops(32, flops, || run(true))
    } else {
        scalar
    };
    (scalar, simd)
}

/// Factored tridiagonal line solves in interleaved groups of eight.
fn bench_adi() -> (f64, f64) {
    let n = 64usize; // line length
    let groups = 128usize; // 8 lines each
    let r = 0.37f32;
    let a = vec![-r; n];
    let c = vec![-r; n];
    let mut bdiag = vec![1.0 + 2.0 * r; n];
    bdiag[0] = 1.0 + r;
    bdiag[n - 1] = 1.0 + r;
    let (mut beta, mut gamma) = (Vec::new(), Vec::new());
    thomas::factor_tridiagonal(&a, &bdiag, &c, &mut beta, &mut gamma);
    let field0 = pseudo(n * groups * 8, 9, -1.0, 1.0);
    let mut field = field0.clone();
    // Elimination (5 flops) + back substitution (2 flops) per element.
    let flops = 7.0 * (n * groups * 8) as f64;
    let mut run = |simd: bool| {
        field.copy_from_slice(&field0);
        let slots = UnsafeSlice::new(&mut field);
        for g in 0..groups {
            // SAFETY: single-threaded; groups own disjoint interleaves.
            unsafe {
                if simd {
                    thomas::solve_factored_lines8_simd(
                        &a,
                        &beta,
                        &gamma,
                        &slots,
                        g * n * 8,
                        8,
                        n,
                        0.0,
                        0.0,
                    );
                } else {
                    thomas::solve_factored_lines8_scalar(
                        &a,
                        &beta,
                        &gamma,
                        &slots,
                        g * n * 8,
                        8,
                        n,
                        0.0,
                        0.0,
                    );
                }
            }
        }
    };
    let scalar = gflops(16, flops, || run(false));
    let simd = if peb_simd::detected() {
        gflops(64, flops, || run(true))
    } else {
        scalar
    };
    (scalar, simd)
}

/// Elementwise axpy on a large buffer (bandwidth-bound reference point).
fn bench_axpy() -> (f64, f64) {
    let len = 1 << 16;
    let x = pseudo(len, 10, -1.0, 1.0);
    let mut y = vec![0f32; len];
    let flops = 2.0 * len as f64;
    let scalar = gflops(256, flops, || ew::vaxpy_scalar_backend(&mut y, 0.5, &x));
    let simd = if peb_simd::detected() {
        gflops(1024, flops, || {
            ew::vaxpy_simd_backend(&mut y, 0.5, &x);
        })
    } else {
        scalar
    };
    (scalar, simd)
}

fn micro_grid() -> Grid {
    Grid::new(16, 16, 4, 8.0, 8.0, 20.0).expect("micro grid")
}

/// One full Table I micro pipeline step (the `BENCH_pool.json` workload).
fn step(grid: Grid, model: &SdmPeb, loss: &PebLoss, opt: &mut Adam) -> Tensor {
    let clip = MaskConfig::demo(grid.nx).generate(1).expect("clip");
    let sim = LithoFlow::new(grid).run(&clip).expect("rigorous chain");
    let label = LabelTransform::paper().encode(&sim.inhibitor);
    let params = model.parameters();
    params.iter().for_each(|p| p.zero_grad());
    let pred = model.forward_train(&sim.acid0);
    loss.combined(&pred, &label).backward();
    opt.step(&params);
    pred.value_clone()
}

/// `STEPS` end-to-end steps at the given dispatch level and thread
/// count; returns `(wall_seconds, final_prediction)`.
fn run_pipeline(level: peb_simd::Level, threads: usize) -> (f64, Tensor) {
    peb_simd::set_level(level);
    let grid = micro_grid();
    let mut rng = StdRng::seed_from_u64(MODEL_SEED);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let loss = PebLoss::paper();
    let mut opt = Adam::new(1e-3);
    let _ = peb_par::with_thread_count(threads, || step(grid, &model, &loss, &mut opt));
    let start = Instant::now();
    let mut last = None;
    for _ in 0..STEPS {
        last = Some(peb_par::with_thread_count(threads, || {
            step(grid, &model, &loss, &mut opt)
        }));
    }
    (start.elapsed().as_secs_f64(), last.expect("step output"))
}

fn bits_identical(a: &Tensor, b: &Tensor) -> bool {
    a.shape() == b.shape()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() {
    peb_pool::set_enabled(true);
    let detected = peb_simd::detected();
    let best = peb_simd::best_level();

    let (gemm_s, gemm_v) = bench_gemm();
    let (scan_s, scan_v) = bench_scan();
    let (adi_s, adi_v) = bench_adi();
    let (axpy_s, axpy_v) = bench_axpy();

    let (wall_scalar, _) = run_pipeline(peb_simd::Level::Scalar, 1);
    let (wall_simd, pred1) = run_pipeline(best, 1);
    let (wall_simd4, pred4) = run_pipeline(best, 4);
    let identical_threads = bits_identical(&pred1, &pred4);

    println!("== peb-simd benchmark (dispatch: {}) ==", best.name());
    println!(
        "  GEMM 256³      scalar: {gemm_s:6.2} GFLOP/s   simd: {gemm_v:6.2} GFLOP/s   ({:.2}×)",
        gemm_v / gemm_s
    );
    println!(
        "  scan 256×64×16 scalar: {scan_s:6.2} GFLOP/s   simd: {scan_v:6.2} GFLOP/s   ({:.2}×)",
        scan_v / scan_s
    );
    println!(
        "  ADI 1024×64    scalar: {adi_s:6.2} GFLOP/s   simd: {adi_v:6.2} GFLOP/s   ({:.2}×)",
        adi_v / adi_s
    );
    println!(
        "  axpy 64k       scalar: {axpy_s:6.2} GFLOP/s   simd: {axpy_v:6.2} GFLOP/s   ({:.2}×)",
        axpy_v / axpy_s
    );
    println!(
        "  table1 step ×{STEPS}: scalar {wall_scalar:.3}s   simd {wall_simd:.3}s   simd ×4 threads {wall_simd4:.3}s"
    );
    println!("  bitwise identical 1 vs 4 threads (simd on): {identical_threads}");

    assert!(
        identical_threads,
        "threading changed the numbers with SIMD on"
    );
    if detected {
        assert!(
            gemm_v >= 2.0 * gemm_s,
            "SIMD GEMM {gemm_v:.2} GFLOP/s is below 2x scalar {gemm_s:.2}"
        );
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"workload\": \"peb-simd microkernels + table1 micro train step\",\n",
            "  \"simd_detected\": {},\n",
            "  \"dispatch_level\": \"{}\",\n",
            "  \"gemm_gflops_scalar\": {:.3},\n",
            "  \"gemm_gflops_simd\": {:.3},\n",
            "  \"gemm_speedup\": {:.3},\n",
            "  \"scan_gflops_scalar\": {:.3},\n",
            "  \"scan_gflops_simd\": {:.3},\n",
            "  \"scan_speedup\": {:.3},\n",
            "  \"adi_gflops_scalar\": {:.3},\n",
            "  \"adi_gflops_simd\": {:.3},\n",
            "  \"adi_speedup\": {:.3},\n",
            "  \"axpy_gflops_scalar\": {:.3},\n",
            "  \"axpy_gflops_simd\": {:.3},\n",
            "  \"steps\": {},\n",
            "  \"wall_seconds_scalar_level\": {:.6},\n",
            "  \"wall_seconds_simd_level\": {:.6},\n",
            "  \"wall_seconds_simd_level_4_threads\": {:.6},\n",
            "  \"end_to_end_speedup\": {:.3},\n",
            "  \"bitwise_identical_1_vs_4_threads\": {}\n",
            "}}\n"
        ),
        detected,
        best.name(),
        gemm_s,
        gemm_v,
        gemm_v / gemm_s,
        scan_s,
        scan_v,
        scan_v / scan_s,
        adi_s,
        adi_v,
        adi_v / adi_s,
        axpy_s,
        axpy_v,
        STEPS,
        wall_scalar,
        wall_simd,
        wall_simd4,
        wall_scalar / wall_simd,
        identical_threads,
    );
    std::fs::write("BENCH_simd.json", &json).expect("write BENCH_simd.json");
    println!("  wrote BENCH_simd.json");
}
