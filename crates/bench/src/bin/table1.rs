//! Regenerates **Table I**: the physical parameters of the photoresist
//! simulation process. The values are the library defaults (this binary
//! both documents and verifies them, including derived diffusivities).

use peb_litho::{Grid, LithoFlow, MackParams, MaskConfig, PebParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

fn main() {
    let peb = PebParams::paper();
    let mack = MackParams::paper();

    println!("== Table I: Important parameters in photoresist simulation process ==\n");
    println!("PEB");
    println!(
        "  Normal diffusion length  L_N,A, L_N,B   {:>6.0}, {:>4.0} nm",
        peb.normal_diff_len_a, peb.normal_diff_len_b
    );
    println!(
        "  Lateral diffusion length L_L,A, L_L,B   {:>6.0}, {:>4.0} nm",
        peb.lateral_diff_len_a, peb.lateral_diff_len_b
    );
    println!(
        "  catalysis coefficient    kc             {:>6.2} /s",
        peb.kc
    );
    println!(
        "  reaction coefficient     kr             {:>6.4} /s",
        peb.kr
    );
    println!(
        "  transfer coefficient     hA, hB         {:>6.3}, {:>4.1}",
        peb.h_a, peb.h_b
    );
    println!(
        "  saturation concentration [A]sat, [B]sat {:>6.1}, {:>4.1}",
        peb.a_sat, peb.b_sat
    );
    println!(
        "  [I](t=0)                                {:>6.1}",
        peb.inhibitor0
    );
    println!(
        "  [B](t=0)                                {:>6.1}",
        peb.base0
    );
    println!(
        "  Baseline time step                      {:>6.1} s",
        peb.dt
    );
    println!(
        "  Duration                                {:>6.1} s",
        peb.duration
    );
    println!("\nDevelop");
    println!(
        "  Rmax                                    {:>6.1} nm/s",
        mack.r_max
    );
    println!(
        "  Rmin                                    {:>6.4} nm/s",
        mack.r_min
    );
    println!(
        "  Mth                                     {:>6.1}",
        mack.m_th
    );
    println!("  n                                       {:>6.0}", mack.n);
    println!(
        "  Duration                                {:>6.1} s",
        mack.duration
    );

    // Derived quantities the solver actually integrates with.
    let (dl_a, dn_a) = peb.diffusivity_a();
    let (dl_b, dn_b) = peb.diffusivity_b();
    println!("\nDerived diffusivities (D = L² / 2T):");
    println!("  D_A lateral {dl_a:>8.4} nm²/s   normal {dn_a:>8.4} nm²/s");
    println!("  D_B lateral {dl_b:>8.4} nm²/s   normal {dn_b:>8.4} nm²/s");
    assert!((dn_a - 70.0f32 * 70.0 / 180.0).abs() < 1e-3);
    assert!((dl_a - 10.0f32 * 10.0 / 180.0).abs() < 1e-4);
    println!("\n[verified] diffusion lengths reproduce Table I under L = √(2DT)");
    println!(
        "[verified] Mack a-constant = {:.3e} from (1−Mth)ⁿ (n+1)/(n−1)",
        mack.a_const()
    );

    // Exercise the parameters end to end on a micro grid — the rigorous
    // chain (aerial image → PEB ADI → development) plus one SDM-PEB
    // forward pass — so the values are checked *in situ* and a
    // `PEB_TRACE` profile of this binary covers every instrumented
    // subsystem (fft, adi, eikonal, gemm, conv, scan).
    let grid = Grid::new(16, 16, 4, 8.0, 8.0, 20.0).expect("micro grid");
    let clip = MaskConfig::demo(grid.nx).generate(1).expect("clip");
    let sim = LithoFlow::new(grid).run(&clip).expect("rigorous chain");
    assert!(sim.inhibitor.min_value() >= 0.0 && sim.inhibitor.max_value() <= 1.0 + 1e-5);
    let mut rng = StdRng::seed_from_u64(1);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let pred = model.predict(&sim.acid0);
    assert!(pred.data().iter().all(|v| v.is_finite()));
    println!(
        "[verified] paper parameters integrate stably on a micro grid (concentrations in [0, 1])"
    );

    peb_bench::emit_profile("table1");
}
