//! Regenerates **Fig. 8**: top-down comparison of ground truth (a),
//! SDM-PEB prediction (b) and their difference (c) at the top and bottom
//! resist surfaces on a held-out clip. Writes six PGM images and prints
//! per-surface max-abs-difference (the paper reports errors within 0.1).

use std::path::PathBuf;

use peb_bench::viz::write_pgm;
use peb_bench::{prepare_dataset, prepare_flow, train_models, ModelKind};
use peb_data::ExperimentScale;
use peb_guard::{Context, PebError};
use peb_tensor::Tensor;

fn plane(volume: &Tensor, layer: usize) -> Tensor {
    let s = volume.shape().to_vec();
    volume
        .slice_axis(0, layer, layer + 1)
        .expect("layer slice")
        .reshape(&[s[1], s[2]])
        .expect("plane reshape")
}

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    eprintln!("[fig8] scale = {}", scale.name());
    let dataset = prepare_dataset(scale)?;
    let flow = prepare_flow(scale);
    let trained = train_models(&[ModelKind::SdmPeb], &dataset, scale.epochs())?;
    let model = &trained[0].model;

    let sample = &dataset.test[0];
    let stats = peb_data::LabelStats::from_dataset(&dataset);
    let pred = peb_bench::predict_inhibitor(model.as_ref(), sample, flow.peb.kc, &stats);
    let truth = &sample.inhibitor;
    let nz = dataset.grid.nz;

    let out = PathBuf::from("target/figures");
    std::fs::create_dir_all(&out).ctx("creating figures dir")?;

    println!("== Fig. 8: top-down ground truth / prediction / difference ==");
    for (surface, layer) in [("top", 0usize), ("bottom", nz - 1)] {
        let gt = plane(truth, layer);
        let pr = plane(&pred, layer);
        let diff = &pr - &gt;
        write_pgm(
            &gt,
            0.0,
            1.0,
            &out.join(format!("fig8_{surface}_truth.pgm")),
        )
        .ctx("writing pgm")?;
        write_pgm(&pr, 0.0, 1.0, &out.join(format!("fig8_{surface}_pred.pgm")))
            .ctx("writing pgm")?;
        write_pgm(
            &diff,
            -0.1,
            0.1,
            &out.join(format!("fig8_{surface}_diff.pgm")),
        )
        .ctx("writing pgm")?;
        let max_abs = diff.abs_t().max_value();
        let within =
            diff.data().iter().filter(|v| v.abs() <= 0.1).count() as f32 / diff.len() as f32;
        println!(
            "{surface:>6} surface: max |diff| = {max_abs:.3}, {:.1}% of pixels within ±0.1 \
             (paper: 'absolute errors across most positions … within 0.1')",
            within * 100.0
        );
    }
    println!("[fig8] wrote target/figures/fig8_*.pgm (truth / pred / diff × top / bottom)");

    peb_bench::emit_profile("fig8");
    Ok(())
}
