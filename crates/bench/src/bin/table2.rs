//! Regenerates **Table II**: comparison of learning-based PEB solvers —
//! inhibitor RMSE/NRMSE, development-rate RMSE/NRMSE, CD error in x/y,
//! and runtime — plus the speedup-over-rigorous-simulation paragraph.
//!
//! Scale: `PEB_SCALE=tiny|small|full` (see DESIGN.md §3). Absolute
//! numbers differ from the paper (synthetic substrate, CPU budget); the
//! *shape* — SDM-PEB ranked first, TEMPO-resist slowest, every model
//! orders-of-magnitude faster than the rigorous solver — is the target.

use peb_bench::{
    evaluate_model, evaluate_rigorous_baseline, prepare_dataset, prepare_flow, render_table,
    train_models_with, ModelKind, TrainOptions, PAPER_TABLE2,
};
use peb_data::ExperimentScale;
use peb_guard::PebError;

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    eprintln!("[table2] scale = {}", scale.name());
    let dataset = prepare_dataset(scale)?;
    let flow = prepare_flow(scale);

    let trained = train_models_with(
        &ModelKind::TABLE2,
        &dataset,
        scale.epochs(),
        &TrainOptions::from_args()?,
    )?;
    let rows: Vec<_> = trained
        .iter()
        .map(|t| evaluate_model(t.model.as_ref(), &dataset, &flow))
        .collect();

    println!("\n== Table II (paper reference) ==");
    println!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8}",
        "Method", "I-RMSEe3", "I-NRMSE%", "R-RMSE", "R-NRMSE%", "CDx", "CDy", "RT/s"
    );
    for (name, a, b, c, d, e, f, g) in PAPER_TABLE2 {
        println!("{name:<22} {a:>9.2} {b:>9.2} {c:>9.3} {d:>9.2} {e:>7.2} {f:>7.2} {g:>8.2}");
    }

    println!();
    print!(
        "{}",
        render_table(
            &format!("Table II (measured, scale={})", scale.name()),
            &rows
        )
    );

    // Speedup paragraph.
    let (trivial_nrmse, rigorous_s) = evaluate_rigorous_baseline(&dataset, &flow);
    let sdm = rows.last().expect("five rows");
    println!("\n== Runtime comparison (paper: SDM-PEB 1.06 s vs S-Litho 147 s = 138×) ==");
    println!("rigorous PEB solve (this substrate): {rigorous_s:.3} s/clip");
    println!(
        "SDM-PEB inference:                   {:.3} s/clip  -> {:.0}x speedup",
        sdm.runtime_s,
        rigorous_s / sdm.runtime_s.max(1e-9)
    );
    for row in &rows {
        println!(
            "  {:<14} RT {:>7.3} s  ({:.2}x vs SDM-PEB)",
            row.name,
            row.runtime_s,
            row.runtime_s / sdm.runtime_s.max(1e-9)
        );
    }
    println!("\n(sanity) trivial no-bake predictor NRMSE: {trivial_nrmse:.1}%");

    // Shape checks the harness asserts so regressions are loud.
    let best_nrmse = rows
        .iter()
        .map(|r| r.inhibitor_nrmse_pct)
        .fold(f32::INFINITY, f32::min);
    if (sdm.inhibitor_nrmse_pct - best_nrmse).abs() < 1e-6 {
        println!("[shape] SDM-PEB has the lowest inhibitor NRMSE — matches the paper");
    } else {
        println!(
            "[shape][!] SDM-PEB NRMSE {:.2}% is not the minimum {:.2}% at this budget",
            sdm.inhibitor_nrmse_pct, best_nrmse
        );
    }
    let tempo = &rows[1];
    let slowest = rows.iter().map(|r| r.runtime_s).fold(0.0f32, f32::max);
    if (tempo.runtime_s - slowest).abs() < 1e-6 {
        println!("[shape] TEMPO-resist is the slowest learned model — matches the paper");
    }

    peb_bench::emit_profile("table2");
    Ok(())
}
