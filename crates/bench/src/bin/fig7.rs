//! Regenerates **Fig. 7**: percentage counts of CD errors (x and y
//! directions) in 0–1 / 1–2 / 2–3 / 3–4 / >4 nm buckets, for every
//! Table II method.

use peb_bench::{evaluate_model, prepare_dataset, prepare_flow, train_models, ModelKind};
use peb_data::ExperimentScale;
use peb_guard::PebError;
use sdm_peb::CD_BUCKET_LABELS;

fn main() -> Result<(), PebError> {
    let scale = ExperimentScale::from_env();
    eprintln!("[fig7] scale = {}", scale.name());
    let dataset = prepare_dataset(scale)?;
    let flow = prepare_flow(scale);

    let trained = train_models(&ModelKind::TABLE2, &dataset, scale.epochs())?;
    let rows: Vec<_> = trained
        .iter()
        .map(|t| evaluate_model(t.model.as_ref(), &dataset, &flow))
        .collect();

    for (axis, pick) in [("(a) x direction", 0usize), ("(b) y direction", 1usize)] {
        println!("\n== Fig. 7{axis}: CD-error bucket percentages ==");
        print!("{:<14}", "Method");
        for label in CD_BUCKET_LABELS {
            print!(" {label:>7}");
        }
        println!(" (nm)");
        for row in &rows {
            let hist = if pick == 0 {
                row.cd_hist.0
            } else {
                row.cd_hist.1
            };
            print!("{:<14}", row.name);
            for v in hist {
                print!(" {v:>6.1}%");
            }
            println!();
        }
    }

    // Shape check: the paper reports SDM-PEB's errors concentrated in the
    // 0–1 nm bucket more than every baseline.
    let sdm = rows.last().expect("five rows");
    let best_bucket0 = rows.iter().map(|r| r.cd_hist.0[0]).fold(0.0f32, f32::max);
    println!(
        "\n[shape] SDM-PEB 0–1 nm share (x): {:.1}% — max across methods: {:.1}%{}",
        sdm.cd_hist.0[0],
        best_bucket0,
        if (sdm.cd_hist.0[0] - best_bucket0).abs() < 1e-6 {
            " (SDM-PEB leads, as in the paper)"
        } else {
            ""
        }
    );

    peb_bench::emit_profile("fig7");
    Ok(())
}
