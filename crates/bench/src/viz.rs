//! Lightweight visualisation output: ASCII heatmaps and PGM images for
//! the figure-reproduction binaries (Figs. 4, 8, 9).

use std::io;
use std::path::Path;

use peb_tensor::Tensor;

/// Renders a `[H, W]` field as an ASCII heatmap (darker glyph = larger
/// value), normalised to the field's own min/max.
pub fn ascii_heatmap(field: &Tensor) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    assert_eq!(field.rank(), 2, "ascii_heatmap expects [H, W]");
    let (h, w) = (field.shape()[0], field.shape()[1]);
    let (lo, hi) = (field.min_value(), field.max_value());
    let span = (hi - lo).max(1e-12);
    let mut out = String::with_capacity(h * (w + 1));
    for y in 0..h {
        for x in 0..w {
            let t = (field.get(&[y, x]) - lo) / span;
            let idx = ((t * (RAMP.len() - 1) as f32).round() as usize).min(RAMP.len() - 1);
            out.push(RAMP[idx] as char);
        }
        out.push('\n');
    }
    out
}

/// Writes a `[H, W]` field as an 8-bit binary PGM image, normalised to
/// `[lo, hi]` (pass the field's own min/max for auto-scaling).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_pgm(field: &Tensor, lo: f32, hi: f32, path: &Path) -> io::Result<()> {
    assert_eq!(field.rank(), 2, "write_pgm expects [H, W]");
    let (h, w) = (field.shape()[0], field.shape()[1]);
    let span = (hi - lo).max(1e-12);
    let mut bytes = Vec::with_capacity(h * w + 32);
    bytes.extend_from_slice(format!("P5\n{w} {h}\n255\n").as_bytes());
    for &v in field.data() {
        let t = ((v - lo) / span).clamp(0.0, 1.0);
        bytes.push((t * 255.0).round() as u8);
    }
    std::fs::write(path, bytes)
}

/// Extracts the vertical (x–z) cross-section through row `y` of a
/// `[D, H, W]` volume as a `[D, W]` field (paper Figs. 4 and 9 are these
/// sections).
pub fn vertical_section(volume: &Tensor, y: usize) -> Tensor {
    assert_eq!(volume.rank(), 3, "vertical_section expects [D, H, W]");
    let (d, _h, w) = (volume.shape()[0], volume.shape()[1], volume.shape()[2]);
    Tensor::from_fn(&[d, w], |i| {
        let (dz, x) = (i / w, i % w);
        volume.get(&[dz, y, x])
    })
}

/// Writes a CSV of one or more named columns of equal length.
///
/// # Errors
///
/// Returns any underlying I/O error.
///
/// # Panics
///
/// Panics if column lengths differ.
pub fn write_csv(columns: &[(&str, Vec<f32>)], path: &Path) -> io::Result<()> {
    let mut out = String::new();
    out.push_str(
        &columns
            .iter()
            .map(|(n, _)| n.to_string())
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    let len = columns.first().map(|(_, v)| v.len()).unwrap_or(0);
    for (_, v) in columns {
        assert_eq!(v.len(), len, "csv column length mismatch");
    }
    for i in 0..len {
        let row: Vec<String> = columns.iter().map(|(_, v)| format!("{}", v[i])).collect();
        out.push_str(&row.join(","));
        out.push('\n');
    }
    std::fs::write(path, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heatmap_shape_and_ramp() {
        let t = Tensor::from_vec(vec![0.0, 0.5, 1.0, 0.25], &[2, 2]).unwrap();
        let s = ascii_heatmap(&t);
        assert_eq!(s.lines().count(), 2);
        assert!(s.starts_with(' ')); // min maps to the lightest glyph
        assert!(s.contains('@')); // max maps to the darkest glyph
    }

    #[test]
    fn pgm_roundtrip_header() {
        let t = Tensor::from_fn(&[4, 6], |i| i as f32);
        let dir = std::env::temp_dir().join("peb_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.pgm");
        write_pgm(&t, 0.0, 23.0, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.starts_with(b"P5\n6 4\n255\n"));
        assert_eq!(bytes.len(), 11 + 24);
        assert_eq!(*bytes.last().unwrap(), 255);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vertical_section_extracts_plane() {
        let v = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let s = vertical_section(&v, 1);
        assert_eq!(s.shape(), &[2, 4]);
        assert_eq!(s.get(&[0, 0]), v.get(&[0, 1, 0]));
        assert_eq!(s.get(&[1, 3]), v.get(&[1, 1, 3]));
    }

    #[test]
    fn csv_layout() {
        let dir = std::env::temp_dir().join("peb_viz_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_csv(&[("a", vec![1.0, 2.0]), ("b", vec![3.0, 4.0])], &path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,3\n2,4\n");
        std::fs::remove_file(&path).ok();
    }
}
