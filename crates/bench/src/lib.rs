//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `src/bin/tableN.rs` / `src/bin/figN.rs` binary builds on this
//! crate: dataset preparation (with on-disk caching), uniform model
//! construction and training, the full evaluation pipeline (inhibitor →
//! development rate → resist profile → CDs), and table rendering with
//! paper-reference columns.
//!
//! Scale is controlled by `PEB_SCALE` (`tiny` default / `small` / `full`)
//! — see [`peb_data::ExperimentScale`].

mod eval;
mod models;
mod prepare;
mod render;
pub mod viz;

pub use eval::{evaluate_model, evaluate_rigorous_baseline, predict_inhibitor, EvalRow};
pub use models::{build_model, train_models, ModelKind, TrainedModel};
pub use prepare::{prepare_dataset, prepare_flow};
pub use render::{format_row, render_table, PAPER_TABLE2, PAPER_TABLE3};
