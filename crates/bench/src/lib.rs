//! Shared harness for regenerating the paper's tables and figures.
//!
//! Every `src/bin/tableN.rs` / `src/bin/figN.rs` binary builds on this
//! crate: dataset preparation (with on-disk caching), uniform model
//! construction and training, the full evaluation pipeline (inhibitor →
//! development rate → resist profile → CDs), and table rendering with
//! paper-reference columns.
//!
//! Scale is controlled by `PEB_SCALE` (`tiny` default / `small` / `full`)
//! — see [`peb_data::ExperimentScale`].

mod eval;
mod models;
mod prepare;
mod render;
pub mod viz;

pub use eval::{evaluate_model, evaluate_rigorous_baseline, predict_inhibitor, EvalRow};
pub use models::{
    build_model, train_models, train_models_with, ModelKind, TrainOptions, TrainedModel,
};
pub use prepare::{prepare_dataset, prepare_flow};
pub use render::{format_row, render_table, PAPER_TABLE2, PAPER_TABLE3};

/// Writes the `peb-obs` JSON profile for this binary when
/// `PEB_TRACE=json` is active, alongside the binary's regular outputs.
///
/// The default path is `PROFILE_<tag>.json`; `PEB_TRACE_OUT` overrides
/// it. Other trace modes are untouched (in `summary` mode the table
/// still prints to stderr at exit through the `peb-obs` hook), so the
/// call is safe to keep unconditionally at the end of every `main`.
pub fn emit_profile(tag: &str) {
    if peb_obs::mode() != peb_obs::TraceMode::Json {
        return;
    }
    let path = std::env::var("PEB_TRACE_OUT").unwrap_or_else(|_| format!("PROFILE_{tag}.json"));
    match peb_obs::write_json(&path) {
        Ok(()) => eprintln!("[{tag}] peb-obs profile written to {path}"),
        Err(e) => eprintln!("[{tag}] failed to write profile {path}: {e}"),
    }
}
