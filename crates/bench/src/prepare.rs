//! Dataset preparation with on-disk caching.

use std::path::PathBuf;

use peb_data::{load_dataset_lenient, save_dataset, Dataset, ExperimentScale};
use peb_guard::{Context, PebError};
use peb_litho::LithoFlow;

/// Cache directory for generated datasets (`target/peb-cache`).
fn cache_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("target");
    p.push("peb-cache");
    p
}

/// Generates (or loads from cache) the dataset for a scale preset.
///
/// The rigorous solves take the bulk of the harness time; the cache makes
/// every subsequent table/figure binary start instantly. Cache reads are
/// lenient: a partially corrupt cache (truncated tail, failed checksum)
/// is reported and regenerated rather than trusted or fatal.
///
/// # Errors
///
/// Returns a typed [`PebError`] when dataset generation fails or the
/// cache directory cannot be created.
pub fn prepare_dataset(scale: ExperimentScale) -> Result<Dataset, PebError> {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).with_ctx(|| format!("creating cache dir {}", dir.display()))?;
    let path = dir.join(format!("dataset-{}.bin", scale.name()));
    if path.exists() {
        match load_dataset_lenient(&path) {
            Ok((ds, report)) if report.clean() => {
                eprintln!("[harness] loaded cached dataset {}", path.display());
                return Ok(ds);
            }
            Ok((_, report)) => eprintln!(
                "[harness] cache damaged ({} sample(s) quarantined, {} lost, crc_ok={:?}); \
                 regenerating",
                report.quarantined.len(),
                report.lost,
                report.crc_ok
            ),
            Err(e) => eprintln!("[harness] cache unreadable ({e}); regenerating"),
        }
    }
    eprintln!(
        "[harness] generating {} dataset ({} train / {} test clips) — rigorous solves…",
        scale.name(),
        scale.dataset_config().n_train,
        scale.dataset_config().n_test
    );
    let ds = Dataset::generate(&scale.dataset_config())
        .map_err(PebError::from)
        .ctx("dataset generation")?;
    if let Err(e) = save_dataset(&ds, &path) {
        eprintln!("[harness] could not cache dataset: {e}");
    }
    Ok(ds)
}

/// The rigorous flow matching a scale preset (used to develop model
/// predictions into profiles/CDs).
pub fn prepare_flow(scale: ExperimentScale) -> LithoFlow {
    LithoFlow::new(scale.grid())
}
