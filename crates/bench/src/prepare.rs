//! Dataset preparation with on-disk caching.

use std::path::PathBuf;

use peb_data::{load_dataset, save_dataset, Dataset, ExperimentScale};
use peb_litho::LithoFlow;

/// Cache directory for generated datasets (`target/peb-cache`).
fn cache_dir() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p.push("target");
    p.push("peb-cache");
    p
}

/// Generates (or loads from cache) the dataset for a scale preset.
///
/// The rigorous solves take the bulk of the harness time; the cache makes
/// every subsequent table/figure binary start instantly.
///
/// # Panics
///
/// Panics if generation fails (invalid preset configuration would be a
/// bug) or the cache directory cannot be created.
pub fn prepare_dataset(scale: ExperimentScale) -> Dataset {
    let dir = cache_dir();
    std::fs::create_dir_all(&dir).expect("create cache dir");
    let path = dir.join(format!("dataset-{}.bin", scale.name()));
    if path.exists() {
        match load_dataset(&path) {
            Ok(ds) => {
                eprintln!("[harness] loaded cached dataset {}", path.display());
                return ds;
            }
            Err(e) => eprintln!("[harness] cache unreadable ({e}); regenerating"),
        }
    }
    eprintln!(
        "[harness] generating {} dataset ({} train / {} test clips) — rigorous solves…",
        scale.name(),
        scale.dataset_config().n_train,
        scale.dataset_config().n_test
    );
    let ds = Dataset::generate(&scale.dataset_config()).expect("dataset generation");
    if let Err(e) = save_dataset(&ds, &path) {
        eprintln!("[harness] could not cache dataset: {e}");
    }
    ds
}

/// The rigorous flow matching a scale preset (used to develop model
/// predictions into profiles/CDs).
pub fn prepare_flow(scale: ExperimentScale) -> LithoFlow {
    LithoFlow::new(scale.grid())
}
