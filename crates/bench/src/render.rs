//! Table rendering with paper-reference columns.

use crate::eval::EvalRow;

/// Paper Table II values:
/// `(name, rmse_e3, nrmse_pct, rate_rmse, rate_nrmse_pct, cd_x, cd_y, rt_s)`.
#[allow(clippy::approx_constant, clippy::type_complexity)] // 3.14 is the paper's CD value
pub const PAPER_TABLE2: [(&str, f32, f32, f32, f32, f32, f32, f32); 5] = [
    ("DeepCNN", 8.25, 12.53, 0.65, 1.63, 3.14, 6.26, 1.01),
    ("TEMPO-resist", 7.67, 12.55, 0.50, 1.26, 2.12, 2.45, 6.48),
    ("FNO", 7.91, 11.68, 0.68, 1.69, 2.34, 3.71, 1.15),
    ("DeePEB", 3.99, 5.70, 0.48, 1.19, 0.98, 1.24, 1.37),
    ("SDM-PEB", 2.78, 3.70, 0.35, 0.86, 0.74, 0.93, 1.06),
];

/// Paper Table III values:
/// `(name, inhibitor_nrmse_pct, rate_nrmse_pct, cd_x, cd_y)`.
pub const PAPER_TABLE3: [(&str, f32, f32, f32, f32); 5] = [
    ("Single Layer Encoder", 13.09, 1.71, 2.93, 3.49),
    ("2-D Scan", 8.83, 1.58, 2.07, 3.05),
    ("w/o. Focal Loss", 5.91, 1.22, 1.14, 1.37),
    ("w/o. Regularization", 5.98, 1.24, 1.15, 1.42),
    ("SDM-PEB", 3.70, 0.86, 0.74, 0.93),
];

/// Formats one measured row in Table II column order.
pub fn format_row(row: &EvalRow) -> String {
    format!(
        "{:<22} {:>9.2} {:>9.2} {:>9.3} {:>9.2} {:>7.2} {:>7.2} {:>8.3}",
        row.name,
        row.inhibitor_rmse_e3,
        row.inhibitor_nrmse_pct,
        row.rate_rmse,
        row.rate_nrmse_pct,
        row.cd_x_nm,
        row.cd_y_nm,
        row.runtime_s,
    )
}

/// Renders a full measured table with the shared Table II header.
pub fn render_table(title: &str, rows: &[EvalRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!("== {title} ==\n"));
    out.push_str(&format!(
        "{:<22} {:>9} {:>9} {:>9} {:>9} {:>7} {:>7} {:>8}\n",
        "Method", "I-RMSEe3", "I-NRMSE%", "R-RMSE", "R-NRMSE%", "CDx", "CDy", "RT/s"
    ));
    for row in rows {
        out.push_str(&format_row(row));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_row() -> EvalRow {
        EvalRow {
            name: "X".into(),
            inhibitor_rmse_e3: 1.0,
            inhibitor_nrmse_pct: 2.0,
            rate_rmse: 0.3,
            rate_nrmse_pct: 0.9,
            cd_x_nm: 1.5,
            cd_y_nm: 1.6,
            runtime_s: 0.01,
            cd_hist: ([0.0; 5], [0.0; 5]),
        }
    }

    #[test]
    fn paper_constants_match_the_papers_ranking() {
        // SDM-PEB is best on every accuracy column of Table II.
        let sdm = PAPER_TABLE2[4];
        for row in &PAPER_TABLE2[..4] {
            assert!(sdm.1 < row.1, "rmse");
            assert!(sdm.2 < row.2, "nrmse");
            assert!(sdm.5 < row.5, "cd x");
            assert!(sdm.6 < row.6, "cd y");
        }
        // And the ablation ordering of Table III holds.
        assert!(PAPER_TABLE3[0].1 > PAPER_TABLE3[1].1);
        assert!(PAPER_TABLE3[1].1 > PAPER_TABLE3[2].1);
        assert!(PAPER_TABLE3[4].1 < PAPER_TABLE3[3].1);
    }

    #[test]
    fn render_contains_all_rows() {
        let table = render_table("T", &[dummy_row(), dummy_row()]);
        assert_eq!(table.matches('\n').count(), 4);
        assert!(table.contains("I-NRMSE%"));
    }
}
