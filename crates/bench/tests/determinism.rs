//! Bitwise determinism of every parallelised hot path.
//!
//! The `peb-par` contract: work is split at fixed, thread-count-independent
//! chunk boundaries and cross-chunk reductions combine in ascending chunk
//! order, so `PEB_THREADS=1` and `PEB_THREADS=4` must produce *identical
//! bits* — not merely close values. These tests drive each parallel kernel
//! at both thread counts through `peb_par::with_thread_count` and compare
//! exact bit patterns.
//!
//! These tests run at the process's latched `PEB_SIMD` dispatch level —
//! the AVX2+FMA vector path on supporting hardware — so they pin the
//! thread-count contract *with SIMD on*. Cross-level checks (scalar vs
//! vector) live in `simd_determinism.rs`, which owns its own process so
//! it can flip the global level safely.

use peb_litho::{
    measure_contact_cds, solve_eikonal, EikonalConfig, Grid, MackParams, MaskConfig, PebParams,
    PebSolver, TimeScheme,
};
use peb_mamba::{selective_scan, selective_scan_chunked};
use peb_nn::{Conv2d, Parameterized};
use peb_tensor::{Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

fn at_threads<T>(threads: usize, f: impl FnOnce() -> T) -> T {
    peb_par::with_thread_count(threads, f)
}

#[test]
fn matmul_is_bitwise_deterministic_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(1001);
    let a = Tensor::randn(&[150, 70], &mut rng);
    let b = Tensor::randn(&[70, 90], &mut rng);
    let one = at_threads(1, || a.matmul(&b).unwrap());
    let four = at_threads(4, || a.matmul(&b).unwrap());
    assert_bits_eq(&one, &four, "matmul");
    let ab = Tensor::randn(&[3, 20, 16], &mut rng);
    let bb = Tensor::randn(&[3, 16, 24], &mut rng);
    let one = at_threads(1, || ab.bmm(&bb).unwrap());
    let four = at_threads(4, || ab.bmm(&bb).unwrap());
    assert_bits_eq(&one, &four, "bmm");
}

#[test]
fn conv_forward_and_backward_are_bitwise_deterministic() {
    let mut rng = StdRng::seed_from_u64(1002);
    let conv = Conv2d::new(4, 6, 3, 1, 1, true, &mut rng);
    let x0 = Tensor::randn(&[4, 16, 16], &mut rng);
    let run = || {
        let x = Var::parameter(x0.clone());
        let y = conv.forward(&x);
        conv.parameters().iter().for_each(|p| p.zero_grad());
        y.square().sum().backward();
        (y.value_clone(), x.grad().unwrap())
    };
    let (y1, g1) = at_threads(1, run);
    let (y4, g4) = at_threads(4, run);
    assert_bits_eq(&y1, &y4, "conv2d forward");
    assert_bits_eq(&g1, &g4, "conv2d input grad");
}

#[test]
fn peb_adi_step_is_bitwise_deterministic() {
    let grid = Grid::new(16, 16, 6, 4.0, 4.0, 10.0).unwrap();
    let params = PebParams {
        duration: 5.0,
        ..PebParams::paper()
    };
    let solver = PebSolver::new(params, grid, TimeScheme::ImplicitLod).unwrap();
    let mut rng = StdRng::seed_from_u64(1003);
    let acid0 = Tensor::rand_uniform(&grid.shape3(), 0.0, 1.0, &mut rng);
    let one = at_threads(1, || solver.run(&acid0).unwrap());
    let four = at_threads(4, || solver.run(&acid0).unwrap());
    assert_bits_eq(&one.acid, &four.acid, "PEB acid");
    assert_bits_eq(&one.inhibitor, &four.inhibitor, "PEB inhibitor");
}

#[test]
fn selective_scan_is_bitwise_deterministic() {
    let (l, ch, n) = (24usize, 10usize, 4usize);
    let mut rng = StdRng::seed_from_u64(1004);
    let u0 = Tensor::randn(&[l, ch], &mut rng);
    let delta = Var::constant(Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng));
    let a = Var::constant(Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng));
    let b = Var::constant(Tensor::randn(&[l, n], &mut rng));
    let c = Var::constant(Tensor::randn(&[l, n], &mut rng));
    let d = Var::constant(Tensor::randn(&[ch], &mut rng));
    let run = || {
        let u = Var::parameter(u0.clone());
        let y = selective_scan(&u, &delta, &a, &b, &c, &d);
        y.square().sum().backward();
        (y.value_clone(), u.grad().unwrap())
    };
    let (y1, g1) = at_threads(1, run);
    let (y4, g4) = at_threads(4, run);
    assert_bits_eq(&y1, &y4, "selective_scan forward");
    assert_bits_eq(&g1, &g4, "selective_scan input grad");
    let chunked = |threads| {
        at_threads(threads, || {
            selective_scan_chunked(&Var::constant(u0.clone()), &delta, &a, &b, &c, &d, 8)
                .value_clone()
        })
    };
    assert_bits_eq(&chunked(1), &chunked(4), "selective_scan_chunked");
}

#[test]
fn eikonal_and_metrology_are_bitwise_deterministic() {
    // Development + CD extraction must close the determinism contract
    // end to end: inhibitor → Mack rate → eikonal arrival → contact CDs.
    let grid = Grid::small();
    let clip = MaskConfig::demo(grid.nx).generate(42).unwrap();
    let mut rng = StdRng::seed_from_u64(1006);
    let inhibitor = Tensor::rand_uniform(&grid.shape3(), 0.05, 1.0, &mut rng);
    let mack = MackParams::paper();
    let run = || {
        let rate = mack.rate_field(&inhibitor);
        let arrival = solve_eikonal(&grid, &rate, EikonalConfig::default()).unwrap();
        let cds = measure_contact_cds(&grid, &arrival, 30.0, &clip.contacts, grid.nz - 1).unwrap();
        (arrival, cds)
    };
    let (s1, cds1) = at_threads(1, run);
    let (s4, cds4) = at_threads(4, run);
    assert_bits_eq(&s1, &s4, "eikonal arrival");
    assert_eq!(cds1.len(), cds4.len(), "contact count");
    assert!(!cds1.is_empty(), "demo clip produced no contacts");
    for (i, (a, b)) in cds1.iter().zip(&cds4).enumerate() {
        assert_eq!(
            a.cd_x_nm.to_bits(),
            b.cd_x_nm.to_bits(),
            "contact {i} cd_x: {} vs {}",
            a.cd_x_nm,
            b.cd_x_nm
        );
        assert_eq!(
            a.cd_y_nm.to_bits(),
            b.cd_y_nm.to_bits(),
            "contact {i} cd_y: {} vs {}",
            a.cd_y_nm,
            b.cd_y_nm
        );
        assert_eq!(a.open, b.open, "contact {i} open flag");
        assert_eq!(a.centre, b.centre, "contact {i} centre");
    }
}

/// Serialises the tests that flip the process-global pool latch.
fn pool_latch_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// One full training step on the micro pipeline: rigorous litho chain,
/// SDM-PEB forward, Eq. 22 loss, backward, Adam update. Returns the
/// prediction and one representative parameter after the update.
fn full_pipeline_step() -> (Tensor, Tensor) {
    use peb_litho::LithoFlow;
    use peb_nn::{Adam, Optimizer};
    use sdm_peb::{LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

    let grid = Grid::new(16, 16, 4, 8.0, 8.0, 20.0).unwrap();
    let clip = MaskConfig::demo(grid.nx).generate(7).unwrap();
    let sim = LithoFlow::new(grid).run(&clip).unwrap();
    let label = LabelTransform::paper().encode(&sim.inhibitor);
    let mut rng = StdRng::seed_from_u64(1007);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let params = model.parameters();
    params.iter().for_each(|p| p.zero_grad());
    let pred = model.forward_train(&sim.acid0);
    PebLoss::paper().combined(&pred, &label).backward();
    Adam::new(1e-3).step(&params);
    (pred.value_clone(), params[0].value_clone())
}

#[test]
fn full_pipeline_is_bitwise_identical_pooled_vs_unpooled() {
    // The buffer pool hands out zeroed / copied storage, so checking the
    // whole litho + forward + backward + optimiser chain with the pool on
    // must reproduce the pool-off bits exactly.
    let _latch = pool_latch_lock();
    peb_pool::set_enabled(false);
    let (pred_off, param_off) = at_threads(1, full_pipeline_step);
    peb_pool::set_enabled(true);
    let (pred_on, param_on) = at_threads(1, full_pipeline_step);
    assert_bits_eq(&pred_off, &pred_on, "pipeline prediction (pool on/off)");
    assert_bits_eq(&param_off, &param_on, "updated parameter (pool on/off)");
}

#[test]
fn full_pipeline_is_bitwise_deterministic_across_thread_counts() {
    let _latch = pool_latch_lock();
    peb_pool::set_enabled(true);
    let (pred1, param1) = at_threads(1, full_pipeline_step);
    let (pred4, param4) = at_threads(4, full_pipeline_step);
    assert_bits_eq(&pred1, &pred4, "pipeline prediction (1 vs 4 threads)");
    assert_bits_eq(&param1, &param4, "updated parameter (1 vs 4 threads)");
}

#[test]
fn full_pipeline_is_bitwise_identical_fused_vs_unfused() {
    // `PEB_FUSE` collapses elementwise chains into single sweeps; the
    // collapsed sweep must reproduce the separate-kernel bits exactly,
    // across thread counts.
    let _latch = pool_latch_lock();
    peb_pool::set_enabled(true);
    let prev = peb_tensor::fusion_enabled();
    peb_tensor::set_fusion_enabled(true);
    let (pred_on_1t, param_on_1t) = at_threads(1, full_pipeline_step);
    let (pred_on_4t, _) = at_threads(4, full_pipeline_step);
    peb_tensor::set_fusion_enabled(false);
    let (pred_off_1t, param_off_1t) = at_threads(1, full_pipeline_step);
    let (pred_off_4t, _) = at_threads(4, full_pipeline_step);
    peb_tensor::set_fusion_enabled(prev);
    assert_bits_eq(
        &pred_on_1t,
        &pred_off_1t,
        "pipeline prediction (fuse on/off)",
    );
    assert_bits_eq(
        &param_on_1t,
        &param_off_1t,
        "updated parameter (fuse on/off)",
    );
    assert_bits_eq(
        &pred_on_1t,
        &pred_on_4t,
        "fused prediction (1 vs 4 threads)",
    );
    assert_bits_eq(
        &pred_off_1t,
        &pred_off_4t,
        "unfused prediction (1 vs 4 threads)",
    );
}

#[test]
fn full_pipeline_is_bitwise_identical_tiled_vs_untiled() {
    // `PEB_TILE` reorders whole-element units of work into cache-sized
    // slabs (ADI x/y sweeps, the explicit stencil, conv3d forward); it
    // must never change a bit, at any thread count.
    let _latch = pool_latch_lock();
    peb_pool::set_enabled(true);
    let prev = peb_pool::tile::tile_target_bytes();
    // Small enough that even the 16×16×4 micro volume splits into slabs.
    peb_pool::tile::set_tile_bytes(Some(1 << 10));
    let (pred_tiled_1t, param_tiled) = at_threads(1, full_pipeline_step);
    let (pred_tiled_4t, _) = at_threads(4, full_pipeline_step);
    peb_pool::tile::set_tile_bytes(None);
    let (pred_flat_1t, param_flat) = at_threads(1, full_pipeline_step);
    let (pred_flat_4t, _) = at_threads(4, full_pipeline_step);
    peb_pool::tile::set_tile_bytes(prev);
    assert_bits_eq(
        &pred_tiled_1t,
        &pred_flat_1t,
        "pipeline prediction (tile on/off)",
    );
    assert_bits_eq(&param_tiled, &param_flat, "updated parameter (tile on/off)");
    assert_bits_eq(
        &pred_tiled_1t,
        &pred_tiled_4t,
        "tiled prediction (1 vs 4 threads)",
    );
    assert_bits_eq(
        &pred_flat_1t,
        &pred_flat_4t,
        "untiled prediction (1 vs 4 threads)",
    );
}

#[test]
fn gradients_check_with_fusion_on() {
    // The fused backward sweeps (exp / sigmoid / square) must still match
    // finite differences.
    let prev = peb_tensor::fusion_enabled();
    peb_tensor::set_fusion_enabled(true);
    let mut rng = StdRng::seed_from_u64(1008);
    let x0 = Tensor::randn(&[12], &mut rng).mul_scalar(0.5);
    let report = peb_tensor::check_gradients(
        &Var::parameter(x0),
        |v| v.sigmoid().mul(&v.exp()).square().sum(),
        1e-2,
    );
    peb_tensor::set_fusion_enabled(prev);
    assert!(report.ok(2e-2), "fused-chain gradcheck: {report:?}");
}

#[test]
fn fft_is_bitwise_deterministic() {
    let mut rng = StdRng::seed_from_u64(1005);
    let f = peb_fft::ComplexField::from_real(&Tensor::randn(&[32, 32], &mut rng));
    let one = at_threads(1, || peb_fft::fft2d(&f).unwrap());
    let four = at_threads(4, || peb_fft::fft2d(&f).unwrap());
    for (i, (x, y)) in one.data().iter().zip(four.data()).enumerate() {
        assert_eq!(x.re.to_bits(), y.re.to_bits(), "fft2d re at {i}");
        assert_eq!(x.im.to_bits(), y.im.to_bits(), "fft2d im at {i}");
    }
}
