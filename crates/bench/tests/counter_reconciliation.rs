//! Reconciles the fusion counters with pool accounting.
//!
//! A k-stage fused chain must be *visible* in the counters exactly the
//! way it is in memory traffic: one pool checkout for the output (hit or
//! miss) and `k` `fused_ops` ticks, while the unfused fallback makes one
//! checkout per stage and ticks no `fused_ops`. In both modes
//! `tensor_allocs` must equal the pool misses over the window — pooled
//! checkouts that hit never tick an alloc, and nothing double-counts.
//!
//! The same discipline covers execution plans: a replayed inference
//! must be invisible to the allocator — zero `pool_misses` and zero
//! `tensor_allocs` over the replay window (the arena serves every
//! planned intermediate; the escaping output hits the warm pool), one
//! `plan_replays` tick, and no `arena_bytes` growth (regions are sized
//! once at plan build).
//!
//! This file holds a single `#[test]` so it gets its own process:
//! counter deltas would be racy if unrelated tests ran concurrently in
//! the same binary.

use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{InferPlan, PebPredictor, SdmPeb, SdmPebConfig};

struct Deltas {
    hits: u64,
    misses: u64,
    fused: u64,
    allocs: u64,
}

fn counters() -> (u64, u64, u64, u64) {
    let p = peb_obs::snapshot();
    (
        p.counter("pool_hits"),
        p.counter("pool_misses"),
        p.counter("fused_ops"),
        p.counter("tensor_allocs"),
    )
}

fn window(f: impl FnOnce() -> Tensor) -> Deltas {
    let (h0, m0, f0, a0) = counters();
    let out = f();
    let (h1, m1, f1, a1) = counters();
    drop(out);
    Deltas {
        hits: h1 - h0,
        misses: m1 - m0,
        fused: f1 - f0,
        allocs: a1 - a0,
    }
}

#[test]
fn fused_chain_counters_reconcile_with_pool_accounting() {
    peb_obs::set_mode(peb_obs::TraceMode::Summary);
    peb_pool::set_enabled(true);

    let a = Tensor::from_fn(&[4096], |i| (i as f32).mul_add(1e-3, -2.0));
    let b = Tensor::from_fn(&[4096], |i| (i as f32).mul_add(-2e-3, 4.0));
    let k = 3; // add → mul → sigmoid
    let chain = |a: &Tensor, b: &Tensor| a.fused().add(b).mul(b).sigmoid().eval();

    // Warm the pool so steady-state checkouts are hits, then measure.
    peb_tensor::set_fusion_enabled(true);
    drop(chain(&a, &b));
    let fused = window(|| chain(&a, &b));

    peb_tensor::set_fusion_enabled(false);
    drop(chain(&a, &b));
    let unfused = window(|| chain(&a, &b));
    peb_tensor::set_fusion_enabled(true);

    assert_eq!(
        fused.fused, k,
        "fused eval must tick one fused_op per stage"
    );
    assert_eq!(
        fused.hits + fused.misses,
        1,
        "fused eval must make exactly one pool checkout"
    );
    assert_eq!(
        fused.allocs, fused.misses,
        "tensor_allocs must equal pool misses in the fused window"
    );

    assert_eq!(unfused.fused, 0, "unfused fallback must tick no fused_ops");
    assert_eq!(
        unfused.hits + unfused.misses,
        k,
        "unfused fallback must check out one intermediate per stage"
    );
    assert_eq!(
        unfused.allocs, unfused.misses,
        "tensor_allocs must equal pool misses in the unfused window"
    );

    // Warm pool ⇒ the traffic difference is pure hits, no fresh allocs.
    assert_eq!(fused.misses, 0, "warm fused checkout should hit the pool");
    assert_eq!(
        unfused.misses, 0,
        "warm unfused checkouts should hit the pool"
    );

    plan_replay_counters_reconcile();
}

/// A replayed inference is allocation-free: the arena serves every
/// planned checkout, so the only pool traffic in the window is the
/// escaping output buffer hitting the warm pool.
fn plan_replay_counters_reconcile() {
    peb_plan::set_enabled(true);
    let mut rng = StdRng::seed_from_u64(17);
    let model = SdmPeb::new(SdmPebConfig::tiny((2, 16, 16)), &mut rng);
    let clip = Tensor::rand_uniform(&[2, 16, 16], 0.05, 0.9, &mut rng);
    let eager = model.predict(&clip).bit_digest();
    let (plan, _) = InferPlan::record(&model, &clip);

    // One throwaway replay warms the pool buckets the escapes land in.
    drop(plan.predict(&model, &clip));

    let snap = |name: &str| peb_obs::snapshot().counter(name);
    let (m0, a0, r0, b0) = (
        snap("pool_misses"),
        snap("tensor_allocs"),
        snap("plan_replays"),
        snap("arena_bytes"),
    );
    let (out, outcome) = plan.predict(&model, &clip);
    let (m1, a1, r1, b1) = (
        snap("pool_misses"),
        snap("tensor_allocs"),
        snap("plan_replays"),
        snap("arena_bytes"),
    );
    assert!(outcome.complete, "replay must complete: {outcome:?}");
    assert_eq!(out.bit_digest(), eager, "replay must stay bitwise eager");
    assert_eq!(m1 - m0, 0, "replay must make zero pool misses");
    assert_eq!(a1 - a0, 0, "replay must make zero fresh heap allocations");
    assert_eq!(
        r1 - r0,
        1,
        "one completed replay must tick plan_replays once"
    );
    assert_eq!(b1 - b0, 0, "a steady-state replay must not grow the arena");
    assert!(
        outcome.served > 0,
        "the arena, not the pool, serves planned intermediates"
    );
}
