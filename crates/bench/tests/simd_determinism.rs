//! Determinism of the SIMD dispatch layer across levels and threads.
//!
//! The `peb-simd` contract has two halves:
//!
//! * for a **fixed dispatch level**, every kernel — and therefore the
//!   whole pipeline — is bitwise identical across runs and across
//!   `PEB_THREADS`;
//! * the **bit-exact kernel class** (ADI line solves, explicit stencil,
//!   elementwise arithmetic, optimiser updates) reproduces the scalar
//!   level on the AVX2+FMA level to the bit, so the physics solver does
//!   not depend on `PEB_SIMD` at all. Tolerance-class kernels (GEMM,
//!   scan, `exp`) may differ across levels by bounded amounts.
//!
//! These tests flip the process-global dispatch level with
//! [`peb_simd::set_level`], so they live in their own integration-test
//! binary (own process) and serialise through a local mutex.

use peb_litho::{Grid, MaskConfig, PebParams, PebSolver, TimeScheme};
use peb_simd::Level;
use peb_tensor::{check_gradients, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Serialises the tests (the dispatch level is process-global) and
/// restores the detected level on drop.
struct LevelGuard {
    _lock: std::sync::MutexGuard<'static, ()>,
}

fn lock_level() -> LevelGuard {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LevelGuard {
        _lock: LOCK.lock().unwrap_or_else(|e| e.into_inner()),
    }
}

impl Drop for LevelGuard {
    fn drop(&mut self) {
        peb_simd::set_level(peb_simd::best_level());
    }
}

fn levels() -> Vec<Level> {
    let mut ls = vec![Level::Scalar];
    if peb_simd::detected() {
        ls.push(Level::Avx2Fma);
    }
    ls
}

fn assert_bits_eq(a: &Tensor, b: &Tensor, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.data().iter().zip(b.data()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: bit mismatch at flat index {i}: {x} vs {y}"
        );
    }
}

/// One full training step on the micro pipeline: litho chain, SDM-PEB
/// forward, Eq. 22 loss, backward, Adam update.
fn full_pipeline_step() -> (Tensor, Tensor) {
    use peb_litho::LithoFlow;
    use peb_nn::{Adam, Optimizer, Parameterized as _};
    use sdm_peb::{LabelTransform, PebLoss, PebPredictor, SdmPeb, SdmPebConfig};

    let grid = Grid::new(16, 16, 4, 8.0, 8.0, 20.0).unwrap();
    let clip = MaskConfig::demo(grid.nx).generate(7).unwrap();
    let sim = LithoFlow::new(grid).run(&clip).unwrap();
    let label = LabelTransform::paper().encode(&sim.inhibitor);
    let mut rng = StdRng::seed_from_u64(2007);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let params = model.parameters();
    params.iter().for_each(|p| p.zero_grad());
    let pred = model.forward_train(&sim.acid0);
    PebLoss::paper().combined(&pred, &label).backward();
    Adam::new(1e-3).step(&params);
    (pred.value_clone(), params[0].value_clone())
}

#[test]
fn pipeline_is_bitwise_deterministic_across_threads_at_every_level() {
    // The acceptance gate: with SIMD on, 1 and 4 threads must still
    // agree to the bit (and likewise with SIMD forced off).
    let _guard = lock_level();
    for level in levels() {
        peb_simd::set_level(level);
        let (pred1, param1) = peb_par::with_thread_count(1, full_pipeline_step);
        let (pred4, param4) = peb_par::with_thread_count(4, full_pipeline_step);
        let name = level.name();
        assert_bits_eq(
            &pred1,
            &pred4,
            &format!("[{name}] prediction 1 vs 4 threads"),
        );
        assert_bits_eq(
            &param1,
            &param4,
            &format!("[{name}] parameter 1 vs 4 threads"),
        );
    }
}

#[test]
fn peb_solver_is_bitwise_identical_across_dispatch_levels() {
    // The PEB physics chain uses only bit-exact kernels (factored
    // tridiagonal solves, the explicit stencil, libm exp in the reaction
    // step), so the *entire solver output* must not depend on PEB_SIMD.
    let _guard = lock_level();
    let grid = Grid::new(16, 16, 6, 4.0, 4.0, 10.0).unwrap();
    // dt below the explicit-Euler stability limit for this grid so both
    // time schemes can run the same configuration.
    let params = PebParams {
        duration: 5.0,
        dt: 0.05,
        ..PebParams::paper()
    };
    let mut rng = StdRng::seed_from_u64(2003);
    let acid0 = Tensor::rand_uniform(&grid.shape3(), 0.0, 1.0, &mut rng);
    for (scheme, scheme_name) in [
        (TimeScheme::ImplicitLod, "implicit"),
        (TimeScheme::ExplicitEuler, "explicit"),
    ] {
        let mut results = Vec::new();
        for level in levels() {
            peb_simd::set_level(level);
            let solver = PebSolver::new(params, grid, scheme).unwrap();
            results.push((level.name(), solver.run(&acid0).unwrap()));
        }
        let (_, base) = &results[0];
        for (name, other) in &results[1..] {
            assert_bits_eq(
                &base.acid,
                &other.acid,
                &format!("{scheme_name} acid scalar vs {name}"),
            );
            assert_bits_eq(
                &base.inhibitor,
                &other.inhibitor,
                &format!("{scheme_name} inhibitor scalar vs {name}"),
            );
        }
    }
}

#[test]
fn optimizer_trajectory_is_bitwise_identical_across_dispatch_levels() {
    use peb_nn::{Adam, Optimizer, Sgd};
    let _guard = lock_level();
    let mut runs = Vec::new();
    for level in levels() {
        peb_simd::set_level(level);
        let mut rng = StdRng::seed_from_u64(2005);
        let p_adam = Var::parameter(Tensor::randn(&[37], &mut rng));
        let p_sgd = Var::parameter(Tensor::randn(&[37], &mut rng));
        let mut adam = Adam::new(1e-2);
        let mut sgd = Sgd::new(1e-2, 0.9);
        for _ in 0..5 {
            [&p_adam, &p_sgd].iter().for_each(|p| p.zero_grad());
            p_adam.square().sum().backward();
            p_sgd.square().sum().backward();
            adam.step(std::slice::from_ref(&p_adam));
            sgd.step(std::slice::from_ref(&p_sgd));
        }
        runs.push((level.name(), p_adam.value_clone(), p_sgd.value_clone()));
    }
    for (name, adam_p, sgd_p) in &runs[1..] {
        assert_bits_eq(&runs[0].1, adam_p, &format!("Adam params scalar vs {name}"));
        assert_bits_eq(&runs[0].2, sgd_p, &format!("SGD params scalar vs {name}"));
    }
}

#[test]
fn model_forward_stays_close_across_dispatch_levels() {
    // GEMM and the scan are tolerance-class, so levels may differ — but
    // only within a tight envelope on a tiny model.
    use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};
    let _guard = lock_level();
    let shape = (4usize, 12usize, 12usize);
    let mut outputs = Vec::new();
    for level in levels() {
        peb_simd::set_level(level);
        let mut rng = StdRng::seed_from_u64(2009);
        let model = SdmPeb::new(SdmPebConfig::tiny(shape), &mut rng);
        let x = Tensor::rand_uniform(&[shape.0, shape.1, shape.2], 0.0, 1.0, &mut rng);
        outputs.push((level.name(), model.predict(&x)));
    }
    for (name, y) in &outputs[1..] {
        let diff = outputs[0].1.max_abs_diff(y);
        assert!(diff < 1e-3, "forward scalar vs {name}: max abs diff {diff}");
    }
}

#[test]
fn gradcheck_passes_with_simd_on() {
    // Satellite: finite-difference gradients for the conv and SDM blocks
    // with the vector kernels active (forward may use the polynomial exp
    // while backward uses libm; the tolerance absorbs that).
    use peb_mamba::selective_scan;
    use peb_nn::{Conv2d, Parameterized};
    let _guard = lock_level();
    if !peb_simd::detected() {
        return;
    }
    peb_simd::set_level(Level::Avx2Fma);

    let mut rng = StdRng::seed_from_u64(2011);
    let conv = Conv2d::new(2, 3, 3, 1, 1, true, &mut rng);
    let x = Var::parameter(Tensor::randn(&[2, 6, 6], &mut rng));
    let report = check_gradients(&x, |v| conv.forward(v).square().sum(), 1e-2);
    assert!(report.ok(3e-2), "conv2d gradcheck: {}", report.max_rel_err);
    for p in conv.parameters() {
        p.zero_grad();
    }

    let (l, ch, n) = (6usize, 10usize, 3usize);
    let delta = Var::constant(Tensor::rand_uniform(&[l, ch], 0.05, 0.5, &mut rng));
    let a = Var::constant(Tensor::rand_uniform(&[ch, n], -1.5, -0.2, &mut rng));
    let b = Var::constant(Tensor::randn(&[l, n], &mut rng));
    let c = Var::constant(Tensor::randn(&[l, n], &mut rng));
    let d = Var::constant(Tensor::randn(&[ch], &mut rng));
    let u = Var::parameter(Tensor::randn(&[l, ch], &mut rng));
    let report = check_gradients(
        &u,
        |v| selective_scan(v, &delta, &a, &b, &c, &d).square().sum(),
        1e-2,
    );
    assert!(report.ok(3e-2), "scan gradcheck: {}", report.max_rel_err);
}

#[test]
fn simd_dispatch_counter_ticks_on_the_vector_path() {
    let _guard = lock_level();
    if !peb_simd::detected() {
        return;
    }
    peb_simd::set_level(Level::Avx2Fma);
    peb_obs::set_mode(peb_obs::TraceMode::Summary);
    let before = peb_obs::counter_value(peb_obs::Counter::SimdDispatch);
    let mut rng = StdRng::seed_from_u64(2013);
    let a = Tensor::randn(&[24, 24], &mut rng);
    let b = Tensor::randn(&[24, 24], &mut rng);
    let _ = a.matmul(&b).unwrap();
    let _ = a.add_t(&b).unwrap();
    let after = peb_obs::counter_value(peb_obs::Counter::SimdDispatch);
    peb_obs::set_mode(peb_obs::TraceMode::Off);
    assert!(
        after > before,
        "simd_dispatch did not advance ({before} -> {after})"
    );
}

#[test]
fn pipeline_is_bitwise_identical_fused_vs_unfused_at_every_level() {
    // Op fusion must be invisible at *both* dispatch levels: within a
    // level, collapsing a chain into one sweep cannot change a bit.
    let _guard = lock_level();
    let prev = peb_tensor::fusion_enabled();
    for level in levels() {
        peb_simd::set_level(level);
        peb_tensor::set_fusion_enabled(true);
        let (pred_on, param_on) = full_pipeline_step();
        peb_tensor::set_fusion_enabled(false);
        let (pred_off, param_off) = full_pipeline_step();
        let name = level.name();
        assert_bits_eq(
            &pred_on,
            &pred_off,
            &format!("[{name}] prediction fuse on/off"),
        );
        assert_bits_eq(
            &param_on,
            &param_off,
            &format!("[{name}] parameter fuse on/off"),
        );
    }
    peb_tensor::set_fusion_enabled(prev);
}

#[test]
fn pipeline_is_bitwise_identical_tiled_vs_untiled_at_every_level() {
    // Slab tiling reorders whole-element work only, so it too must be
    // invisible at both dispatch levels.
    let _guard = lock_level();
    let prev = peb_pool::tile::tile_target_bytes();
    for level in levels() {
        peb_simd::set_level(level);
        peb_pool::tile::set_tile_bytes(Some(1 << 10));
        let (pred_tiled, param_tiled) = full_pipeline_step();
        peb_pool::tile::set_tile_bytes(None);
        let (pred_flat, param_flat) = full_pipeline_step();
        let name = level.name();
        assert_bits_eq(
            &pred_tiled,
            &pred_flat,
            &format!("[{name}] prediction tile on/off"),
        );
        assert_bits_eq(
            &param_tiled,
            &param_flat,
            &format!("[{name}] parameter tile on/off"),
        );
    }
    peb_pool::tile::set_tile_bytes(prev);
}
