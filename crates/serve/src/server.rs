//! The TCP front end: blocking accept loops, per-connection request
//! loops, routing, and graceful shutdown.
//!
//! Routes:
//!
//! | method | path | body | response |
//! |--------|------|------|----------|
//! | GET | `/healthz` | — | `200 ok` (liveness: the process answers) |
//! | GET | `/readyz` | — | `200 ready`, or `503` while the queue is past its high-water mark or a swap is in flight |
//! | GET | `/stats` | — | JSON counters + batch histogram + model version |
//! | GET | `/version` | — | JSON model version |
//! | POST | `/infer` | `PEBCLIP1` frame | `PEBRESP2` frame (CRC-32 footer) |
//! | POST | `/swap` | checkpoint path (text) | JSON new model version |
//!
//! `/infer` honours an optional `X-Peb-Deadline-Us` header: the request
//! is shed with 504 if the batch coalescer cannot run it within that
//! many microseconds of arrival (routers propagate their remaining
//! budget here, so a slow worker never wastes compute on an answer the
//! caller already gave up on).
//!
//! Every error is a typed [`ServeError`] with a deterministic status:
//! 429 when the inference queue sheds, 409 when a hot-swap is rejected
//! (the previous model keeps serving), 4xx for malformed inputs.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::clip;
use crate::config::ServeConfig;
use crate::engine::{Engine, EngineHandle};
use crate::error::ServeError;
use crate::http::{encode_response, HttpError, Method, Request, RequestParser};
use crate::stats::version_json;

/// Read timeout on connections: bounds how long a quiet socket delays
/// noticing shutdown.
const READ_POLL: Duration = Duration::from_millis(100);

/// Chaos: once a `hang-worker` fault fires, every connection thread
/// parks instead of serving — the process stays alive but health
/// probes time out, exactly the wedge a supervisor must detect.
static WEDGED: AtomicBool = AtomicBool::new(false);

/// A running server (engine + accept threads).
pub struct Server {
    addr: SocketAddr,
    engine: Option<Engine>,
    handle: EngineHandle,
    stop: Arc<AtomicBool>,
    acceptors: Vec<JoinHandle<()>>,
    conns: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Binds `config.addr`, spawns the engine and the accept threads.
    ///
    /// # Errors
    ///
    /// Propagates socket errors (bind, clone) from the OS.
    pub fn start(config: ServeConfig) -> std::io::Result<Server> {
        let config = config.normalized();
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let (engine, handle) = Engine::spawn(&config);
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        // /swap bodies are small paths; /infer bodies are one clip frame.
        let max_body = config.max_body_bytes().max(4096);
        let mut acceptors = Vec::with_capacity(config.conn_workers);
        for i in 0..config.conn_workers {
            let listener = listener.try_clone()?;
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            acceptors.push(
                std::thread::Builder::new()
                    .name(format!("peb-serve-accept-{i}"))
                    .spawn(move || accept_loop(&listener, &handle, &stop, &conns, max_body))?,
            );
        }
        Ok(Server {
            addr,
            engine: Some(engine),
            handle,
            stop,
            acceptors,
            conns,
        })
    }

    /// The bound address (resolves port 0 for tests).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Direct engine access (in-process clients, tests).
    pub fn handle(&self) -> &EngineHandle {
        &self.handle
    }

    /// Graceful stop: accept loops wake and exit, open connections
    /// finish their current request, queued inferences drain.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake every acceptor blocked in accept().
        for _ in 0..self.acceptors.len() {
            let _ = TcpStream::connect(self.addr);
        }
        for a in self.acceptors.drain(..) {
            let _ = a.join();
        }
        let conns = {
            let mut g = self.conns.lock().unwrap_or_else(|e| e.into_inner());
            std::mem::take(&mut *g)
        };
        for c in conns {
            let _ = c.join();
        }
        if let Some(e) = self.engine.take() {
            e.shutdown();
        }
    }
}

fn accept_loop(
    listener: &TcpListener,
    handle: &EngineHandle,
    stop: &Arc<AtomicBool>,
    conns: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    max_body: usize,
) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if stop.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
        };
        if stop.load(Ordering::Acquire) {
            return;
        }
        let handle = handle.clone();
        let stop = Arc::clone(stop);
        let spawned = std::thread::Builder::new()
            .name("peb-serve-conn".to_string())
            .spawn(move || handle_conn(stream, &handle, &stop, max_body));
        if let Ok(j) = spawned {
            conns.lock().unwrap_or_else(|e| e.into_inner()).push(j);
        }
    }
}

fn handle_conn(
    mut stream: TcpStream,
    handle: &EngineHandle,
    stop: &Arc<AtomicBool>,
    max_body: usize,
) {
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let _ = stream.set_nodelay(true);
    let mut parser = RequestParser::with_max_body(max_body);
    let mut buf = [0u8; 16 * 1024];
    loop {
        if WEDGED.load(Ordering::Acquire) {
            park_wedged(stop);
            return;
        }
        // Serve everything already buffered (pipelining).
        loop {
            match parser.poll() {
                Ok(Some(req)) => {
                    // Chaos hook: an armed `hang-worker` fault wedges the
                    // whole process at this request — no thread reads or
                    // writes again, so `/healthz` probes time out and
                    // the supervisor must restart us.
                    if peb_guard::chaos::take_hang_worker() {
                        WEDGED.store(true, Ordering::Release);
                    }
                    if WEDGED.load(Ordering::Acquire) {
                        park_wedged(stop);
                        return;
                    }
                    handle.stats().tick_request();
                    if !respond(&mut stream, handle, &req) {
                        return;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    handle.stats().tick_request();
                    write_http_error(&mut stream, &e);
                    return;
                }
            }
        }
        if stop.load(Ordering::Acquire) {
            return;
        }
        match stream.read(&mut buf) {
            Ok(0) => return,
            Ok(n) => parser.feed(&buf[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue;
            }
            Err(_) => return,
        }
    }
}

/// Parks a wedged connection thread. The wedge deliberately survives
/// everything except process death or an in-process [`Server::shutdown`]
/// (tests must still be able to join their threads); a real supervisor
/// sees probe timeouts and kills the process.
fn park_wedged(stop: &Arc<AtomicBool>) {
    while !stop.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// Routes one request and writes its response. Returns whether the
/// connection stays open.
fn respond(stream: &mut TcpStream, handle: &EngineHandle, req: &Request) -> bool {
    let _span = peb_obs::span("serve.request");
    let result: Result<(&'static str, Vec<u8>), ServeError> = route(handle, req);
    match result {
        Ok((content_type, body)) => {
            // Chaos hook: an armed `disconnect` fault drops this client
            // after the headers, before the body — the in-flight
            // inference itself has already completed safely.
            if peb_guard::chaos::take_disconnect() {
                let full = encode_response(200, content_type, &body, false);
                let head_len = full.len() - body.len();
                let _ = stream.write_all(&full[..head_len]);
                let _ = stream.flush();
                let _ = stream.shutdown(Shutdown::Both);
                return false;
            }
            let keep = req.keep_alive;
            let mut wire = encode_response(200, content_type, &body, keep);
            // Chaos hook: an armed `corrupt-resp` fault flips the last
            // byte of a binary response — the CRC-32 footer no longer
            // verifies, so a checking reader must reject the frame
            // instead of deserialising garbage.
            if content_type == "application/octet-stream" && peb_guard::chaos::take_corrupt_resp() {
                if let Some(last) = wire.last_mut() {
                    *last ^= 0xFF;
                }
            }
            if stream.write_all(&wire).is_err() {
                return false;
            }
            keep
        }
        Err(e) => {
            // Terminal engine loss closes; app-level errors keep the
            // connection usable.
            let keep = req.keep_alive && e != ServeError::EngineGone;
            let body = format!("{e}\n");
            let wire = encode_response(e.status(), "text/plain", body.as_bytes(), keep);
            if stream.write_all(&wire).is_err() {
                return false;
            }
            keep
        }
    }
}

fn route(handle: &EngineHandle, req: &Request) -> Result<(&'static str, Vec<u8>), ServeError> {
    match (&req.method, req.path()) {
        (Method::Get, "/healthz") => Ok(("text/plain", b"ok\n".to_vec())),
        (Method::Get, "/readyz") => match handle.stats().readiness() {
            Ok(()) => Ok(("text/plain", b"ready\n".to_vec())),
            Err(detail) => Err(ServeError::NotReady { detail }),
        },
        (Method::Get, "/stats") => Ok(("application/json", handle.stats().to_json().into_bytes())),
        (Method::Get, "/version") => Ok((
            "application/json",
            version_json(&handle.stats().version()).into_bytes(),
        )),
        (Method::Post, "/infer") => {
            let deadline = requested_deadline(req)?;
            let t = clip::decode_clip(&req.body)?;
            let p = requested_prec(req)?.unwrap_or_else(|| handle.default_prec());
            let y = handle.infer_with(t, p, deadline)?;
            Ok(("application/octet-stream", clip::encode_resp(&y)))
        }
        (Method::Post, "/swap") => {
            let path = std::str::from_utf8(&req.body)
                .map_err(|_| ServeError::BadClip {
                    detail: "swap body must be a UTF-8 checkpoint path".into(),
                })?
                .trim();
            if path.is_empty() {
                return Err(ServeError::SwapRejected {
                    detail: "empty checkpoint path".into(),
                });
            }
            let v = handle.swap(std::path::PathBuf::from(path))?;
            Ok(("application/json", version_json(&v).into_bytes()))
        }
        (_, "/healthz" | "/readyz" | "/stats" | "/version" | "/infer" | "/swap") => {
            Err(ServeError::MethodNotAllowed)
        }
        _ => Err(ServeError::NotFound),
    }
}

/// Resolves the `?prec=` selection on an `/infer` request. `None`
/// means the request did not pick one (the engine default applies);
/// an unparsable value is a 400, not a silent f32 fallback.
fn requested_prec(req: &Request) -> Result<Option<peb_simd::Prec>, ServeError> {
    let Some(q) = req.query() else {
        return Ok(None);
    };
    for pair in q.split('&') {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        if k == "prec" {
            return peb_simd::Prec::parse(v)
                .map(Some)
                .ok_or_else(|| ServeError::BadClip {
                    detail: format!("unknown precision {v:?} (expected f32, bf16 or int8)"),
                });
        }
    }
    Ok(None)
}

/// Resolves the `X-Peb-Deadline-Us` header into an absolute instant.
/// `None` means no deadline was propagated; an unparsable value is a
/// 400, not a silently unbounded request.
fn requested_deadline(req: &Request) -> Result<Option<Instant>, ServeError> {
    let Some(v) = req.header("x-peb-deadline-us") else {
        return Ok(None);
    };
    let us: u64 = v.trim().parse().map_err(|_| {
        ServeError::Http(HttpError::BadHeader {
            detail: format!("x-peb-deadline-us {v:?} is not a microsecond count"),
        })
    })?;
    Ok(Some(Instant::now() + Duration::from_micros(us)))
}

fn write_http_error(stream: &mut TcpStream, e: &HttpError) {
    let body = format!("{e}\n");
    let wire = encode_response(e.status(), "text/plain", body.as_bytes(), false);
    let _ = stream.write_all(&wire);
}
