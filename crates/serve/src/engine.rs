//! The inference engine: one thread that owns the model, batches
//! requests, and hot-swaps checkpoints between batches.
//!
//! # Why a single owner thread
//!
//! `Var` (the autograd handle every model parameter lives in) is
//! `Rc`-based and deliberately not `Send`, so the model cannot be
//! shared behind an `Arc` across connection threads. Instead the engine
//! thread *owns* the [`SdmPeb`] instance outright and everything else
//! talks to it through channels carrying plain [`Tensor`]s (which are
//! `Send`). This buys three properties at once:
//!
//! 1. **Dynamic batching** is a natural consequence: the thread drains
//!    the bounded job queue into a batch (up to `max_batch`, waiting at
//!    most `max_wait_us` for stragglers) and runs one
//!    [`PebPredictor::predict_batch`] call per batch.
//! 2. **Hot-swap drain is free**: control messages are only processed
//!    *between* batches, so by construction the old model has finished
//!    every in-flight request before it is dropped — no epoch counting,
//!    no read-write locks.
//! 3. **Backpressure is explicit**: the job queue is a
//!    `sync_channel(queue_cap)`; when it is full, `try_send` fails and
//!    the caller sheds the request with 429 instead of queueing
//!    unboundedly.
//!
//! Clips smaller than the model grid are zero-padded (corner-anchored)
//! up to the grid and the prediction is cropped back, so one
//! fixed-architecture model serves every clip size up to its grid —
//! this is the "padded batch" in DESIGN §12.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{InferPlan, PebPredictor, SdmPeb, SdmPebConfig};

use crate::config::{ModelPreset, ServeConfig};
use crate::error::ServeError;
use crate::stats::{ModelVersion, ServeStats};

/// How long the engine blocks waiting for work before re-checking the
/// control channel (bounds hot-swap and shutdown latency when idle).
const IDLE_POLL: Duration = Duration::from_millis(20);

/// One inference request travelling to the engine thread.
struct InferJob {
    clip: Tensor,
    /// Compute precision this request selected (`?prec=`, or the
    /// server default).
    prec: peb_simd::Prec,
    /// Propagated deadline (`X-Peb-Deadline-Us`); the batch coalescer
    /// sheds the job with 504 if it is still unserved at this instant,
    /// and never waits for stragglers past it.
    deadline: Option<Instant>,
    reply: SyncSender<Result<Tensor, ServeError>>,
}

/// Control-plane messages (processed between batches).
enum CtrlMsg {
    Swap {
        path: PathBuf,
        reply: SyncSender<Result<ModelVersion, ServeError>>,
    },
    Shutdown,
}

/// Cloneable client half: submit clips, request swaps.
#[derive(Clone)]
pub struct EngineHandle {
    jobs: SyncSender<InferJob>,
    ctrl: Sender<CtrlMsg>,
    stats: Arc<ServeStats>,
    grid: (usize, usize, usize),
    default_prec: peb_simd::Prec,
}

impl EngineHandle {
    /// Runs one clip through the next batch at the server's default
    /// precision, blocking until its prediction is ready.
    ///
    /// # Errors
    ///
    /// [`ServeError::ClipTooLarge`] when the clip exceeds the model
    /// grid, [`ServeError::Overloaded`] when the bounded queue is full
    /// (the request is shed, never queued), [`ServeError::EngineGone`]
    /// after shutdown.
    pub fn infer(&self, clip: Tensor) -> Result<Tensor, ServeError> {
        self.infer_prec(clip, self.default_prec)
    }

    /// [`EngineHandle::infer`] with an explicit compute precision —
    /// the `?prec=` query parameter lands here. Jobs of different
    /// precisions batch together; the engine partitions each batch by
    /// precision and runs each partition under a scoped
    /// `peb_simd::with_prec` override.
    ///
    /// # Errors
    ///
    /// Same as [`EngineHandle::infer`].
    pub fn infer_prec(&self, clip: Tensor, prec: peb_simd::Prec) -> Result<Tensor, ServeError> {
        self.infer_with(clip, prec, None)
    }

    /// [`EngineHandle::infer_prec`] with an optional propagated
    /// deadline. A job whose deadline has already passed when the batch
    /// coalescer picks it up is shed with
    /// [`ServeError::DeadlineExceeded`] (504) rather than served late,
    /// and the coalescer never waits for stragglers past the earliest
    /// deadline in the forming batch.
    ///
    /// # Errors
    ///
    /// Same as [`EngineHandle::infer`], plus
    /// [`ServeError::DeadlineExceeded`].
    pub fn infer_with(
        &self,
        clip: Tensor,
        prec: peb_simd::Prec,
        deadline: Option<Instant>,
    ) -> Result<Tensor, ServeError> {
        let s = clip.shape();
        let &[d, h, w] = s else {
            return Err(ServeError::BadClip {
                detail: format!("expected a rank-3 clip, got shape {s:?}"),
            });
        };
        let dims = (d, h, w);
        if dims.0 > self.grid.0 || dims.1 > self.grid.1 || dims.2 > self.grid.2 {
            return Err(ServeError::ClipTooLarge {
                got: dims,
                max: self.grid,
            });
        }
        if let Some(dl) = deadline {
            if Instant::now() >= dl {
                self.stats.tick_deadline_shed();
                return Err(ServeError::DeadlineExceeded);
            }
        }
        let (tx, rx) = mpsc::sync_channel(1);
        match self.jobs.try_send(InferJob {
            clip,
            prec,
            deadline,
            reply: tx,
        }) {
            Ok(()) => self.stats.queue_push(),
            Err(TrySendError::Full(_)) => {
                self.stats.tick_shed();
                return Err(ServeError::Overloaded);
            }
            Err(TrySendError::Disconnected(_)) => return Err(ServeError::EngineGone),
        }
        rx.recv().map_err(|_| ServeError::EngineGone)?
    }

    /// Hot-swaps the served model to the checkpoint at `path`,
    /// blocking until the swap commits or is rejected.
    ///
    /// # Errors
    ///
    /// [`ServeError::SwapRejected`] when the checkpoint fails CRC,
    /// decoding, or shape validation — the previous model keeps
    /// serving. [`ServeError::EngineGone`] after shutdown.
    pub fn swap(&self, path: PathBuf) -> Result<ModelVersion, ServeError> {
        // While a swap is in flight `/readyz` answers 503, steering
        // routers away before the between-batches splice.
        self.stats.swaps_inflight.fetch_add(1, Ordering::Relaxed);
        let r = (|| {
            let (tx, rx) = mpsc::sync_channel(1);
            self.ctrl
                .send(CtrlMsg::Swap { path, reply: tx })
                .map_err(|_| ServeError::EngineGone)?;
            rx.recv().map_err(|_| ServeError::EngineGone)?
        })();
        self.stats.swaps_inflight.fetch_sub(1, Ordering::Relaxed);
        r
    }

    /// The shared statistics block.
    pub fn stats(&self) -> &Arc<ServeStats> {
        &self.stats
    }

    /// The model grid `(D, H, W)` this engine serves.
    pub fn grid(&self) -> (usize, usize, usize) {
        self.grid
    }

    /// The precision applied when a request does not select one.
    pub fn default_prec(&self) -> peb_simd::Prec {
        self.default_prec
    }
}

/// The engine thread plus its shutdown plumbing.
pub struct Engine {
    ctrl: Sender<CtrlMsg>,
    join: Option<JoinHandle<()>>,
}

impl Engine {
    /// Builds the model from `config` and starts the engine thread.
    pub fn spawn(config: &ServeConfig) -> (Engine, EngineHandle) {
        let stats = Arc::new(ServeStats::new(config));
        let (jobs_tx, jobs_rx) = mpsc::sync_channel(config.queue_cap);
        let (ctrl_tx, ctrl_rx) = mpsc::channel();
        let handle = EngineHandle {
            jobs: jobs_tx,
            ctrl: ctrl_tx.clone(),
            stats: Arc::clone(&stats),
            grid: config.grid,
            default_prec: config.default_prec,
        };
        let cfg = config.clone();
        let join = std::thread::Builder::new()
            .name("peb-serve-engine".to_string())
            .spawn(move || {
                // The thread-count override is thread-local; the engine
                // thread applies it to itself so every kernel it runs
                // sees the configured count.
                match cfg.compute_threads {
                    Some(n) => peb_par::with_thread_count(n, || {
                        engine_main(&cfg, &stats, &jobs_rx, &ctrl_rx);
                    }),
                    None => engine_main(&cfg, &stats, &jobs_rx, &ctrl_rx),
                }
            })
            .unwrap_or_else(|e| panic!("spawning engine thread: {e}"));
        (
            Engine {
                ctrl: ctrl_tx,
                join: Some(join),
            },
            handle,
        )
    }

    /// Stops the engine: queued jobs drain (every accepted request gets
    /// a reply), then the thread exits and later submissions fail with
    /// [`ServeError::EngineGone`].
    pub fn shutdown(mut self) {
        let _ = self.ctrl.send(CtrlMsg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        let _ = self.ctrl.send(CtrlMsg::Shutdown);
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

fn build_model(config: &ServeConfig) -> SdmPeb {
    let cfg = match config.preset {
        ModelPreset::Tiny => SdmPebConfig::tiny(config.grid),
        ModelPreset::ForGrid => SdmPebConfig::for_grid(config.grid),
    };
    let mut rng = StdRng::seed_from_u64(config.seed);
    SdmPeb::new(cfg, &mut rng)
}

/// Per-engine cache of recorded execution plans, keyed like the FFT
/// plan cache: one entry per (padded clip geometry, precision). Lives
/// entirely on the engine thread (plans are `!Send` by design — their
/// arenas serve the thread that recorded them).
type PlanCache = HashMap<(usize, usize, usize, peb_simd::Prec), InferPlan>;

fn engine_main(
    config: &ServeConfig,
    stats: &Arc<ServeStats>,
    jobs: &Receiver<InferJob>,
    ctrl: &Receiver<CtrlMsg>,
) {
    let mut model = build_model(config);
    let mut version: u64 = 0;
    let mut plans = PlanCache::new();
    loop {
        // Control plane first: swaps land between batches, so the old
        // model is fully drained before it is dropped.
        let mut shutting_down = false;
        while let Ok(msg) = ctrl.try_recv() {
            match msg {
                CtrlMsg::Swap { path, reply } => {
                    let r = handle_swap(config, stats, &mut model, &mut plans, &mut version, &path);
                    let _ = reply.send(r);
                }
                CtrlMsg::Shutdown => shutting_down = true,
            }
        }
        if shutting_down {
            // Drain: every request already accepted into the queue gets
            // a real prediction before the thread exits.
            while let Ok(job) = jobs.try_recv() {
                let batch = collect_batch(config, jobs, job);
                run_batch(config, stats, &model, &mut plans, batch);
            }
            return;
        }
        match jobs.recv_timeout(IDLE_POLL) {
            Ok(first) => {
                let batch = collect_batch(config, jobs, first);
                run_batch(config, stats, &model, &mut plans, batch);
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => return,
        }
    }
}

/// Gathers up to `max_batch` jobs: greedy drain of whatever is queued,
/// then wait up to `max_wait_us` for stragglers — never past the
/// earliest propagated deadline already in the forming batch (waiting
/// longer could only turn a servable request into a 504 shed).
fn collect_batch(
    config: &ServeConfig,
    jobs: &Receiver<InferJob>,
    first: InferJob,
) -> Vec<InferJob> {
    let mut batch = vec![first];
    while batch.len() < config.max_batch {
        match jobs.try_recv() {
            Ok(j) => batch.push(j),
            Err(_) => break,
        }
    }
    if config.max_wait_us > 0 && batch.len() < config.max_batch {
        let mut wait_until = Instant::now() + Duration::from_micros(config.max_wait_us);
        while batch.len() < config.max_batch {
            if let Some(earliest) = batch.iter().filter_map(|j| j.deadline).min() {
                wait_until = wait_until.min(earliest);
            }
            let now = Instant::now();
            if now >= wait_until {
                break;
            }
            match jobs.recv_timeout(wait_until - now) {
                Ok(j) => batch.push(j),
                Err(_) => break,
            }
        }
    }
    batch
}

fn run_batch(
    config: &ServeConfig,
    stats: &Arc<ServeStats>,
    model: &SdmPeb,
    plans: &mut PlanCache,
    mut batch: Vec<InferJob>,
) {
    let _span = peb_obs::span("serve.batch");
    // Every collected job has left the bounded queue, whatever its fate.
    for _ in &batch {
        stats.queue_pop();
    }
    // Chaos hook: an armed kill-worker fault aborts the whole process
    // at the top of a batch — mid-request from the router's point of
    // view — exercising supervisor restart and router failover.
    if peb_guard::chaos::take_kill_worker() {
        eprintln!("peb-serve: chaos kill-worker fired, aborting");
        std::process::abort();
    }
    // Deadline sheds happen at batch start: a job whose propagated
    // deadline has already passed is answered 504 now rather than
    // served late (the caller has given up; compute would be wasted).
    let now = Instant::now();
    let mut kept = Vec::with_capacity(batch.len());
    for job in batch.drain(..) {
        if job.deadline.is_some_and(|dl| now >= dl) {
            stats.tick_deadline_shed();
            let _ = job.reply.send(Err(ServeError::DeadlineExceeded));
        } else {
            kept.push(job);
        }
    }
    let batch = kept;
    if batch.is_empty() {
        return;
    }
    stats.tick_batch(batch.len());
    // Jobs of different precisions share the queue and the batch
    // window; the engine partitions here and runs each precision group
    // as one predict_batch call under a scoped override. The fixed
    // partition order (f32, bf16, int8) and predict_batch's
    // batch-composition invariance keep every result bitwise
    // independent of which other requests happened to share the batch.
    for p in [
        peb_simd::Prec::F32,
        peb_simd::Prec::Bf16,
        peb_simd::Prec::Int8,
    ] {
        let group: Vec<&InferJob> = batch.iter().filter(|j| j.prec == p).collect();
        if group.is_empty() {
            continue;
        }
        let padded: Vec<Tensor> = group
            .iter()
            .map(|j| pad_to_grid(&j.clip, config.grid))
            .collect();
        let outputs = peb_simd::with_prec(p, || {
            if !peb_plan::enabled() {
                return model.predict_batch(&padded);
            }
            // Planned path: every padded clip replays through the
            // cached plan for its (geometry, precision). A miss records
            // one (costing an extra warmup predict, amortised across
            // the key's lifetime). Replay is bitwise identical to
            // predict_batch by the plan contract, so batch composition
            // still cannot change a single output bit.
            padded
                .iter()
                .map(|clip| predict_planned(stats, model, plans, clip, p))
                .collect()
        });
        for (job, out) in group.into_iter().zip(outputs) {
            stats.tick_prec_infer(p);
            let s = job.clip.shape();
            let cropped = crop_to(&out, (s[0], s[1], s[2]));
            // A gone receiver just means the client hung up; inference
            // results are not transactional.
            let _ = job.reply.send(Ok(cropped));
        }
    }
}

/// One planned inference: replay the cached plan for this geometry, or
/// record a fresh one. Always returns the bitwise-eager prediction.
fn predict_planned(
    stats: &Arc<ServeStats>,
    model: &SdmPeb,
    plans: &mut PlanCache,
    clip: &Tensor,
    p: peb_simd::Prec,
) -> Tensor {
    let s = clip.shape();
    let key = (s[0], s[1], s[2], p);
    if let Some(plan) = plans.get(&key) {
        let (out, outcome) = plan.predict(model, clip);
        if outcome.complete {
            stats.tick_plan_hit();
        } else {
            // The checkout stream diverged (a latch changed under us).
            // The result is still bitwise-eager — only the planning win
            // was lost — but the plan is stale: drop it so the next
            // request at this key re-records.
            plans.remove(&key);
        }
        return out;
    }
    let (plan, out) = InferPlan::record(model, clip);
    stats.tick_plan_miss();
    plans.insert(key, plan);
    let total: u64 = plans
        .values()
        .map(|pl| pl.plan().arena_bytes() as u64)
        .sum();
    stats.note_arena_bytes(total);
    out
}

fn handle_swap(
    config: &ServeConfig,
    stats: &Arc<ServeStats>,
    model: &mut SdmPeb,
    plans: &mut PlanCache,
    version: &mut u64,
    path: &std::path::Path,
) -> Result<ModelVersion, ServeError> {
    let _span = peb_obs::span("serve.swap");
    // Chaos hook: an armed truncate-ckpt/bitflip-ckpt corrupts the
    // incoming file exactly once, exercising the reject path below.
    peb_guard::chaos::mangle_checkpoint(path);
    let rejected = |detail: String| {
        stats.tick_swap_rejected();
        ServeError::SwapRejected { detail }
    };
    // CRC + header validation without decoding the full payload; a
    // corrupt file is rejected here and the live model is untouched.
    let meta = peb_guard::peek(path).map_err(|e| rejected(e.to_string()))?;
    let ckpt = peb_guard::TrainCheckpoint::load(path).map_err(|e| rejected(e.to_string()))?;
    // A v2 (int8-quantized, params-empty) checkpoint dequantizes here;
    // a v1 checkpoint passes its f32 params through untouched.
    let params = sdm_peb::checkpoint_params(&ckpt).map_err(|e| rejected(e.to_string()))?;
    // Splice the weights into a *fresh* instance so a shape mismatch
    // can never leave the serving model half-written.
    let fresh = build_model(config);
    sdm_peb::restore_parameters(&fresh, &params).map_err(|e| rejected(e.to_string()))?;
    *model = fresh; // old model drops here — after its last batch
                    // Plans recorded against the old weights would replay *correctly*
                    // against the new ones (replay computes values eagerly), but they
                    // describe a retired model; invalidate atomically with the splice
                    // so `/stats` reflects the cache behaviour the swap caused.
    let dropped = plans.len() as u64;
    plans.clear();
    stats.tick_plan_invalidations(dropped);
    *version += 1;
    let v = ModelVersion {
        version: *version,
        epoch: meta.epoch,
        source: path.display().to_string(),
        crc: meta.crc,
    };
    stats.tick_hotswap(v.clone());
    Ok(v)
}

fn pad_to_grid(clip: &Tensor, grid: (usize, usize, usize)) -> Tensor {
    let s = clip.shape();
    let (d, h, w) = (s[0], s[1], s[2]);
    let (gd, gh, gw) = grid;
    if (d, h, w) == grid {
        return clip.clone();
    }
    let mut out = vec![0.0f32; gd * gh * gw];
    let src = clip.data();
    for z in 0..d {
        for y in 0..h {
            let src_row = (z * h + y) * w;
            let dst_row = (z * gh + y) * gw;
            out[dst_row..dst_row + w].copy_from_slice(&src[src_row..src_row + w]);
        }
    }
    Tensor::from_vec(out, &[gd, gh, gw]).unwrap_or_else(|e| panic!("padding clip: {e}"))
}

fn crop_to(full: &Tensor, dims: (usize, usize, usize)) -> Tensor {
    let s = full.shape();
    let (gd, gh, gw) = (s[0], s[1], s[2]);
    let (d, h, w) = dims;
    if (gd, gh, gw) == dims {
        return full.clone();
    }
    let src = full.data();
    let mut out = Vec::with_capacity(d * h * w);
    for z in 0..d {
        for y in 0..h {
            let src_row = (z * gh + y) * gw;
            out.extend_from_slice(&src[src_row..src_row + w]);
        }
    }
    Tensor::from_vec(out, &[d, h, w]).unwrap_or_else(|e| panic!("cropping clip: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    fn tiny_config() -> ServeConfig {
        ServeConfig {
            grid: (4, 16, 16),
            max_batch: 4,
            max_wait_us: 0,
            queue_cap: 8,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn pad_and_crop_roundtrip_bitwise() {
        let clip = Tensor::from_vec(
            (0..2 * 3 * 5).map(|i| i as f32 * 0.25 - 1.0).collect(),
            &[2, 3, 5],
        )
        .expect("tensor");
        let padded = pad_to_grid(&clip, (4, 16, 16));
        assert_eq!(padded.shape(), &[4, 16, 16]);
        let back = crop_to(&padded, (2, 3, 5));
        assert_eq!(back.bit_digest(), clip.bit_digest());
        // Padding is zero outside the clip.
        assert_eq!(padded.data()[4 * 16 * 16 - 1], 0.0);
    }

    #[test]
    fn engine_serves_and_rejects_oversized() {
        let cfg = tiny_config();
        let (engine, handle) = Engine::spawn(&cfg);
        let y = handle
            .infer(Tensor::full(&[4, 16, 16], 0.3))
            .expect("inference");
        assert_eq!(y.shape(), &[4, 16, 16]);
        let err = handle
            .infer(Tensor::zeros(&[5, 16, 16]))
            .expect_err("oversized");
        assert!(matches!(err, ServeError::ClipTooLarge { .. }));
        engine.shutdown();
        let err = handle.infer(Tensor::zeros(&[1, 1, 1])).expect_err("gone");
        assert_eq!(err, ServeError::EngineGone);
    }

    #[test]
    fn small_clip_matches_padded_crop_of_direct_predict() {
        let cfg = tiny_config();
        let (engine, handle) = Engine::spawn(&cfg);
        let clip = Tensor::from_vec(
            (0..2 * 8 * 8).map(|i| (i as f32 * 0.01).sin()).collect(),
            &[2, 8, 8],
        )
        .expect("tensor");
        let served = handle.infer(clip.clone()).expect("inference");
        engine.shutdown();

        let model = build_model(&cfg);
        let direct = crop_to(&model.predict(&pad_to_grid(&clip, cfg.grid)), (2, 8, 8));
        assert_eq!(served.bit_digest(), direct.bit_digest());
    }

    #[test]
    fn expired_deadline_sheds_with_504_and_queue_depth_settles() {
        let cfg = tiny_config();
        let (engine, handle) = Engine::spawn(&cfg);
        let past = Instant::now()
            .checked_sub(Duration::from_millis(1))
            .unwrap_or_else(Instant::now);
        let err = handle
            .infer_with(Tensor::zeros(&[4, 16, 16]), peb_simd::Prec::F32, Some(past))
            .expect_err("expired deadline");
        assert_eq!(err, ServeError::DeadlineExceeded);
        // A generous deadline serves normally.
        let y = handle
            .infer_with(
                Tensor::zeros(&[4, 16, 16]),
                peb_simd::Prec::F32,
                Some(Instant::now() + Duration::from_secs(30)),
            )
            .expect("served within deadline");
        assert_eq!(y.shape(), &[4, 16, 16]);
        let stats = Arc::clone(handle.stats());
        engine.shutdown();
        assert!(stats.deadline_shed.load(Ordering::Relaxed) >= 1);
        assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn batch_stats_are_recorded() {
        let cfg = tiny_config();
        let (engine, handle) = Engine::spawn(&cfg);
        handle.infer(Tensor::zeros(&[4, 16, 16])).expect("infer");
        let stats = Arc::clone(handle.stats());
        engine.shutdown();
        assert!(stats.batches.load(Ordering::Relaxed) >= 1);
        assert!(!stats.batch_hist_entries().is_empty());
    }
}
