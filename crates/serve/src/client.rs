//! A minimal blocking HTTP client for the serve wire format.
//!
//! This exists for the closed-loop load generator (`bench_serve`) and
//! the integration tests — it exercises the server over a real TCP
//! socket with the same keep-alive connection reuse a production
//! client would use. It is intentionally tiny: one connection, one
//! request in flight, `Content-Length` framing only.

use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use peb_tensor::Tensor;

use crate::clip;
use crate::error::ServeError;
use crate::stats::ModelVersion;

/// Socket timeouts a [`Client`] applies at each phase. `None` means
/// block indefinitely (the OS default for that phase).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClientTimeouts {
    /// TCP connect timeout.
    pub connect: Option<Duration>,
    /// Per-`read` timeout while waiting for response bytes.
    pub read: Option<Duration>,
    /// Per-`write` timeout while sending the request.
    pub write: Option<Duration>,
}

impl Default for ClientTimeouts {
    /// The historical defaults: 5 s connect, 30 s read, 30 s write.
    fn default() -> Self {
        ClientTimeouts {
            connect: Some(Duration::from_secs(5)),
            read: Some(Duration::from_secs(30)),
            write: Some(Duration::from_secs(30)),
        }
    }
}

impl ClientTimeouts {
    /// Uniform timeouts across all three phases — probes and routers
    /// that want one latency budget per upstream exchange.
    pub fn uniform(d: Duration) -> Self {
        ClientTimeouts {
            connect: Some(d),
            read: Some(d),
            write: Some(d),
        }
    }
}

/// One keep-alive client connection.
pub struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

/// A parsed response: status code and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response body.
    pub body: Vec<u8>,
}

/// Client-side failure (socket or framing).
#[derive(Debug)]
pub enum ClientError {
    /// A configured timeout elapsed — distinguishable from other io
    /// failures so callers (the fleet router, bench loops) can treat a
    /// slow upstream differently from a dead one.
    Timeout {
        /// Which phase timed out (`"connect"`, `"read"` or `"write"`).
        phase: &'static str,
    },
    /// Socket-level failure (connection refused/reset, EOF, …).
    Io(std::io::Error),
    /// The server's response violated `Content-Length` framing.
    BadResponse(String),
    /// The server answered with a non-200 status.
    Status(u16, String),
}

impl ClientError {
    /// Whether this failure means the upstream did not durably process
    /// the request from this client's point of view — i.e. a retry on
    /// another shard is safe and warranted (inference is idempotent).
    pub fn is_retryable(&self) -> bool {
        match self {
            ClientError::Timeout { .. } | ClientError::Io(_) | ClientError::BadResponse(_) => true,
            // 429 (shed) and 5xx are retryable elsewhere; 4xx client
            // errors are deterministic and would fail identically.
            ClientError::Status(code, _) => *code == 429 || *code >= 500,
        }
    }
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Timeout { phase } => write!(f, "{phase} timeout"),
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::BadResponse(d) => write!(f, "bad response: {d}"),
            ClientError::Status(s, body) => write!(f, "status {s}: {}", body.trim_end()),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// Folds a phase's io error into the typed timeout when its kind says
/// the configured deadline elapsed.
fn phase_error(phase: &'static str, e: std::io::Error) -> ClientError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            ClientError::Timeout { phase }
        }
        _ => ClientError::Io(e),
    }
}

impl Client {
    /// Connects to a running server with the default timeouts
    /// ([`ClientTimeouts::default`]).
    ///
    /// # Errors
    ///
    /// Propagates connect failures; a connect that exceeds the default
    /// 5 s budget is a typed [`ClientError::Timeout`].
    pub fn connect(addr: SocketAddr) -> Result<Self, ClientError> {
        Self::connect_with(addr, ClientTimeouts::default())
    }

    /// Connects with explicit per-phase timeouts. The read/write
    /// budgets stick to the connection; [`Client::set_read_timeout`]
    /// can tighten the read budget per request afterwards (the fleet
    /// router re-arms it with each request's remaining deadline).
    ///
    /// # Errors
    ///
    /// [`ClientError::Timeout`] when the connect budget elapses,
    /// [`ClientError::Io`] for other socket failures.
    pub fn connect_with(addr: SocketAddr, timeouts: ClientTimeouts) -> Result<Self, ClientError> {
        let stream = match timeouts.connect {
            Some(d) => TcpStream::connect_timeout(&addr, d).map_err(|e| phase_error("connect", e)),
            None => TcpStream::connect(addr).map_err(ClientError::Io),
        }?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(timeouts.read)?;
        stream.set_write_timeout(timeouts.write)?;
        Ok(Client {
            stream,
            buf: Vec::new(),
        })
    }

    /// Re-arms the per-`read` timeout (e.g. to a request's remaining
    /// deadline). `None` blocks indefinitely.
    ///
    /// # Errors
    ///
    /// Propagates the socket option failure.
    pub fn set_read_timeout(&mut self, d: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(d)?;
        Ok(())
    }

    /// Sends one request and reads its complete response.
    ///
    /// # Errors
    ///
    /// [`ClientError::Io`] on socket failure (including the server
    /// dropping the connection mid-response — the chaos `disconnect`
    /// fault surfaces here), [`ClientError::BadResponse`] on framing
    /// violations.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        self.request_with_headers(method, path, &[], body)
    }

    /// [`Client::request`] with extra header fields (e.g. the fleet
    /// router's `x-peb-deadline-us` propagation).
    ///
    /// # Errors
    ///
    /// Same as [`Client::request`]; a write that exceeds the write
    /// budget is a typed [`ClientError::Timeout`].
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        headers: &[(&str, &str)],
        body: &[u8],
    ) -> Result<ClientResponse, ClientError> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nhost: peb-serve\r\n");
        for (k, v) in headers {
            head.push_str(&format!("{k}: {v}\r\n"));
        }
        head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
        self.stream
            .write_all(head.as_bytes())
            .map_err(|e| phase_error("write", e))?;
        self.stream
            .write_all(body)
            .map_err(|e| phase_error("write", e))?;
        self.read_response()
    }

    fn read_response(&mut self) -> Result<ClientResponse, ClientError> {
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i;
            }
            self.fill()?;
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).to_string();
        let mut lines = head.split("\r\n");
        let status_line = lines.next().unwrap_or_default();
        let status: u16 = status_line
            .split(' ')
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| ClientError::BadResponse(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        for line in lines {
            if let Some((k, v)) = line.split_once(':') {
                if k.eq_ignore_ascii_case("content-length") {
                    content_length = v
                        .trim()
                        .parse()
                        .map_err(|_| ClientError::BadResponse(format!("bad length {v:?}")))?;
                }
            }
        }
        let body_start = head_end + 4;
        while self.buf.len() < body_start + content_length {
            self.fill()?;
        }
        let body = self.buf[body_start..body_start + content_length].to_vec();
        self.buf.drain(..body_start + content_length);
        Ok(ClientResponse { status, body })
    }

    fn fill(&mut self) -> Result<(), ClientError> {
        let mut chunk = [0u8; 16 * 1024];
        let n = self
            .stream
            .read(&mut chunk)
            .map_err(|e| phase_error("read", e))?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(())
    }

    /// `POST /infer`: one clip in, one prediction out.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] carries the server's typed error body on
    /// any non-200 (e.g. `429` when shed).
    pub fn infer(&mut self, clip: &Tensor) -> Result<Tensor, ClientError> {
        self.infer_path(clip, "/infer")
    }

    /// `POST /infer?prec=…`: one clip in at an explicit compute
    /// precision, one prediction out.
    ///
    /// # Errors
    ///
    /// Same as [`Client::infer`]; an unknown precision name is a
    /// server-side 400.
    pub fn infer_prec(
        &mut self,
        clip: &Tensor,
        prec: peb_simd::Prec,
    ) -> Result<Tensor, ClientError> {
        self.infer_path(clip, &format!("/infer?prec={}", prec.name()))
    }

    fn infer_path(&mut self, clip: &Tensor, path: &str) -> Result<Tensor, ClientError> {
        let r = self.request("POST", path, &clip::encode_clip(clip))?;
        if r.status != 200 {
            return Err(ClientError::Status(
                r.status,
                String::from_utf8_lossy(&r.body).to_string(),
            ));
        }
        clip::decode_resp(&r.body).map_err(|e: ServeError| ClientError::BadResponse(e.to_string()))
    }

    /// `POST /swap`: points the server at a new checkpoint.
    ///
    /// # Errors
    ///
    /// [`ClientError::Status`] on rejection (409 keeps the old model).
    pub fn swap(&mut self, ckpt_path: &str) -> Result<ModelVersion, ClientError> {
        let r = self.request("POST", "/swap", ckpt_path.as_bytes())?;
        if r.status != 200 {
            return Err(ClientError::Status(
                r.status,
                String::from_utf8_lossy(&r.body).to_string(),
            ));
        }
        let text = String::from_utf8_lossy(&r.body).to_string();
        parse_version_json(&text)
            .ok_or_else(|| ClientError::BadResponse(format!("unparsable version {text:?}")))
    }
}

/// Parses the server's `/version`-shape JSON without a JSON library
/// (fields are flat and numeric except `source`).
pub fn parse_version_json(s: &str) -> Option<ModelVersion> {
    let num = |key: &str| -> Option<u64> {
        let pat = format!("\"{key}\":");
        let i = s.find(&pat)? + pat.len();
        let rest = &s[i..];
        let end = rest
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(rest.len());
        rest[..end].parse().ok()
    };
    let source = {
        let pat = "\"source\":\"";
        let i = s.find(pat)? + pat.len();
        let rest = &s[i..];
        let end = rest.find('"')?;
        rest[..end].to_string()
    };
    Some(ModelVersion {
        version: num("version")?,
        epoch: num("epoch")?,
        source,
        crc: num("crc")? as u32,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::version_json;

    #[test]
    fn version_json_roundtrips() {
        let v = ModelVersion {
            version: 3,
            epoch: 17,
            source: "/tmp/ckpt_17.peb".into(),
            crc: 0x1234_5678,
        };
        let parsed = parse_version_json(&version_json(&v)).expect("parses");
        assert_eq!(parsed, v);
    }
}
