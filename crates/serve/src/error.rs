//! Typed errors for the serving layer.

use std::fmt;

use crate::http::HttpError;

/// Everything that can go wrong between accepting a connection and
/// writing a response. Every variant maps to a deterministic HTTP status
/// via [`ServeError::status`]; the server never panics on a bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request bytes violated the HTTP/1.1 subset.
    Http(HttpError),
    /// The request body failed clip decoding (bad magic, dims, length).
    BadClip {
        /// What failed to decode.
        detail: String,
    },
    /// The clip exceeds the model grid the server was configured for.
    ClipTooLarge {
        /// Requested dims `(d, h, w)`.
        got: (usize, usize, usize),
        /// Model grid dims `(d, h, w)`.
        max: (usize, usize, usize),
    },
    /// The bounded inference queue is full — the request was shed.
    Overloaded,
    /// A checkpoint hot-swap was rejected; the previous model stays live.
    SwapRejected {
        /// The underlying failure (corrupt file, shape mismatch, …).
        detail: String,
    },
    /// No route matches the method + target.
    NotFound,
    /// The route exists but not for this method.
    MethodNotAllowed,
    /// The inference engine is gone (shutdown or panic) — terminal.
    EngineGone,
    /// The request's propagated deadline expired before the batch
    /// coalescer could run it — shed with 504 rather than served late.
    DeadlineExceeded,
    /// The server is alive but not ready: the bounded queue is above
    /// its high-water mark or a checkpoint swap is in flight
    /// (`/readyz` → 503; routers stop routing here before 429s start).
    NotReady {
        /// Which readiness condition failed.
        detail: String,
    },
    /// A response frame used a retired wire version (`PEBRESP1`) that
    /// carries no integrity footer.
    LegacyFrame {
        /// Version actually seen.
        got: String,
        /// Version this reader speaks.
        want: String,
    },
    /// A response frame's CRC-32 footer did not verify — the frame was
    /// torn or corrupted in the worker or on the wire.
    CorruptFrame {
        /// CRC stored in the footer.
        stored: u32,
        /// CRC computed over the received payload.
        computed: u32,
    },
}

impl ServeError {
    /// The HTTP status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Http(e) => e.status(),
            ServeError::BadClip { .. } => 400,
            ServeError::ClipTooLarge { .. } => 413,
            ServeError::Overloaded => 429,
            ServeError::SwapRejected { .. } => 409,
            ServeError::NotFound => 404,
            ServeError::MethodNotAllowed => 405,
            ServeError::EngineGone => 503,
            ServeError::DeadlineExceeded => 504,
            ServeError::NotReady { .. } => 503,
            // A corrupt or legacy upstream frame surfaces from a proxy
            // as a bad-gateway; workers themselves never emit these.
            ServeError::LegacyFrame { .. } | ServeError::CorruptFrame { .. } => 502,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Http(e) => write!(f, "http: {e}"),
            ServeError::BadClip { detail } => write!(f, "bad clip payload: {detail}"),
            ServeError::ClipTooLarge { got, max } => write!(
                f,
                "clip {}x{}x{} exceeds model grid {}x{}x{}",
                got.0, got.1, got.2, max.0, max.1, max.2
            ),
            ServeError::Overloaded => write!(f, "inference queue full, request shed"),
            ServeError::SwapRejected { detail } => write!(f, "hot-swap rejected: {detail}"),
            ServeError::NotFound => write!(f, "no such route"),
            ServeError::MethodNotAllowed => write!(f, "method not allowed on this route"),
            ServeError::EngineGone => write!(f, "inference engine unavailable"),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline expired before service, request shed")
            }
            ServeError::NotReady { detail } => write!(f, "not ready: {detail}"),
            ServeError::LegacyFrame { got, want } => {
                write!(f, "legacy response frame {got} (this reader wants {want})")
            }
            ServeError::CorruptFrame { stored, computed } => write!(
                f,
                "response frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_are_stable() {
        assert_eq!(ServeError::Overloaded.status(), 429);
        assert_eq!(
            ServeError::SwapRejected { detail: "x".into() }.status(),
            409
        );
        assert_eq!(ServeError::NotFound.status(), 404);
        assert_eq!(ServeError::EngineGone.status(), 503);
        assert_eq!(ServeError::DeadlineExceeded.status(), 504);
        assert_eq!(ServeError::NotReady { detail: "q".into() }.status(), 503);
        assert_eq!(
            ServeError::CorruptFrame {
                stored: 1,
                computed: 2
            }
            .status(),
            502
        );
        assert_eq!(
            ServeError::LegacyFrame {
                got: "PEBRESP1".into(),
                want: "PEBRESP2".into()
            }
            .status(),
            502
        );
        assert_eq!(
            ServeError::ClipTooLarge {
                got: (9, 9, 9),
                max: (4, 8, 8)
            }
            .status(),
            413
        );
    }
}
