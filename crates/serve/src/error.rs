//! Typed errors for the serving layer.

use std::fmt;

use crate::http::HttpError;

/// Everything that can go wrong between accepting a connection and
/// writing a response. Every variant maps to a deterministic HTTP status
/// via [`ServeError::status`]; the server never panics on a bad input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request bytes violated the HTTP/1.1 subset.
    Http(HttpError),
    /// The request body failed clip decoding (bad magic, dims, length).
    BadClip {
        /// What failed to decode.
        detail: String,
    },
    /// The clip exceeds the model grid the server was configured for.
    ClipTooLarge {
        /// Requested dims `(d, h, w)`.
        got: (usize, usize, usize),
        /// Model grid dims `(d, h, w)`.
        max: (usize, usize, usize),
    },
    /// The bounded inference queue is full — the request was shed.
    Overloaded,
    /// A checkpoint hot-swap was rejected; the previous model stays live.
    SwapRejected {
        /// The underlying failure (corrupt file, shape mismatch, …).
        detail: String,
    },
    /// No route matches the method + target.
    NotFound,
    /// The route exists but not for this method.
    MethodNotAllowed,
    /// The inference engine is gone (shutdown or panic) — terminal.
    EngineGone,
}

impl ServeError {
    /// The HTTP status code this error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            ServeError::Http(e) => e.status(),
            ServeError::BadClip { .. } => 400,
            ServeError::ClipTooLarge { .. } => 413,
            ServeError::Overloaded => 429,
            ServeError::SwapRejected { .. } => 409,
            ServeError::NotFound => 404,
            ServeError::MethodNotAllowed => 405,
            ServeError::EngineGone => 503,
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Http(e) => write!(f, "http: {e}"),
            ServeError::BadClip { detail } => write!(f, "bad clip payload: {detail}"),
            ServeError::ClipTooLarge { got, max } => write!(
                f,
                "clip {}x{}x{} exceeds model grid {}x{}x{}",
                got.0, got.1, got.2, max.0, max.1, max.2
            ),
            ServeError::Overloaded => write!(f, "inference queue full, request shed"),
            ServeError::SwapRejected { detail } => write!(f, "hot-swap rejected: {detail}"),
            ServeError::NotFound => write!(f, "no such route"),
            ServeError::MethodNotAllowed => write!(f, "method not allowed on this route"),
            ServeError::EngineGone => write!(f, "inference engine unavailable"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<HttpError> for ServeError {
    fn from(e: HttpError) -> Self {
        ServeError::Http(e)
    }
}

/// Serving-layer result alias.
pub type Result<T> = std::result::Result<T, ServeError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn statuses_are_stable() {
        assert_eq!(ServeError::Overloaded.status(), 429);
        assert_eq!(
            ServeError::SwapRejected { detail: "x".into() }.status(),
            409
        );
        assert_eq!(ServeError::NotFound.status(), 404);
        assert_eq!(ServeError::EngineGone.status(), 503);
        assert_eq!(
            ServeError::ClipTooLarge {
                got: (9, 9, 9),
                max: (4, 8, 8)
            }
            .status(),
            413
        );
    }
}
