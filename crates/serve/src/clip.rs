//! Binary clip codec for `/infer` payloads.
//!
//! Requests carry a `PEBCLIP1` frame, responses a `PEBRESP1` frame —
//! both the same layout, little-endian throughout:
//!
//! ```text
//! [8]  magic          b"PEBCLIP1" / b"PEBRESP1"
//! [4]  u32 d
//! [4]  u32 h
//! [4]  u32 w
//! [d·h·w·4]  f32 data, row-major [D, H, W]
//! ```
//!
//! Raw `f32` bits pass through untouched in both directions, so a
//! client can verify the serving layer's bitwise batching-invariance
//! contract end to end (`bench_serve` does exactly that with
//! `Tensor::bit_digest`).

use peb_tensor::Tensor;

use crate::error::ServeError;

/// Request frame magic.
pub const CLIP_MAGIC: &[u8; 8] = b"PEBCLIP1";
/// Response frame magic.
pub const RESP_MAGIC: &[u8; 8] = b"PEBRESP1";
/// Frame header size: magic + three u32 dims.
pub const HEADER_BYTES: usize = 8 + 3 * 4;

/// Encodes a `[D, H, W]` tensor as a frame with the given magic.
fn encode(magic: &[u8; 8], t: &Tensor) -> Vec<u8> {
    let s = t.shape();
    debug_assert_eq!(s.len(), 3, "clip frames are rank-3");
    let mut out = Vec::with_capacity(HEADER_BYTES + t.len() * 4);
    out.extend_from_slice(magic);
    for &d in s {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encodes a request frame (`PEBCLIP1`).
pub fn encode_clip(t: &Tensor) -> Vec<u8> {
    encode(CLIP_MAGIC, t)
}

/// Encodes a response frame (`PEBRESP1`).
pub fn encode_resp(t: &Tensor) -> Vec<u8> {
    encode(RESP_MAGIC, t)
}

/// Decodes a frame with the given magic into a `[D, H, W]` tensor.
fn decode(magic: &[u8; 8], bytes: &[u8]) -> Result<Tensor, ServeError> {
    let bad = |detail: String| ServeError::BadClip { detail };
    if bytes.len() < HEADER_BYTES {
        return Err(bad(format!(
            "frame of {} bytes is shorter than the {HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != magic {
        return Err(bad(format!(
            "bad magic {:?} (expected {:?})",
            String::from_utf8_lossy(&bytes[..8]),
            String::from_utf8_lossy(magic)
        )));
    }
    let dim = |i: usize| -> usize {
        let mut b = [0u8; 4];
        b.copy_from_slice(&bytes[8 + 4 * i..8 + 4 * (i + 1)]);
        u32::from_le_bytes(b) as usize
    };
    let (d, h, w) = (dim(0), dim(1), dim(2));
    if d == 0 || h == 0 || w == 0 {
        return Err(bad(format!("zero dimension in {d}x{h}x{w}")));
    }
    let n = d
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .ok_or_else(|| bad(format!("dimension overflow in {d}x{h}x{w}")))?;
    let want = HEADER_BYTES + n * 4;
    if bytes.len() != want {
        return Err(bad(format!(
            "{d}x{h}x{w} needs {want} bytes, frame has {}",
            bytes.len()
        )));
    }
    let data: Vec<f32> = bytes[HEADER_BYTES..]
        .chunks_exact(4)
        .map(|c| {
            let mut b = [0u8; 4];
            b.copy_from_slice(c);
            f32::from_le_bytes(b)
        })
        .collect();
    Tensor::from_vec(data, &[d, h, w]).map_err(|e| bad(e.to_string()))
}

/// Decodes a request frame (`PEBCLIP1`).
pub fn decode_clip(bytes: &[u8]) -> Result<Tensor, ServeError> {
    decode(CLIP_MAGIC, bytes)
}

/// Decodes a response frame (`PEBRESP1`).
pub fn decode_resp(bytes: &[u8]) -> Result<Tensor, ServeError> {
    decode(RESP_MAGIC, bytes)
}

/// Exact wire size of a frame for a `(d, h, w)` clip.
pub fn frame_bytes(dims: (usize, usize, usize)) -> usize {
    HEADER_BYTES + dims.0 * dims.1 * dims.2 * 4
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bitwise() {
        let t = Tensor::from_vec(
            (0..2 * 3 * 4).map(|i| (i as f32).sqrt() - 1.5).collect(),
            &[2, 3, 4],
        )
        .expect("tensor");
        let back = decode_clip(&encode_clip(&t)).expect("decode");
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.bit_digest(), t.bit_digest());
        let back = decode_resp(&encode_resp(&t)).expect("decode");
        assert_eq!(back.bit_digest(), t.bit_digest());
    }

    #[test]
    fn rejects_malformed_frames() {
        // Too short.
        assert!(decode_clip(b"PEBCLIP1").is_err());
        // Wrong magic.
        let t = Tensor::zeros(&[1, 1, 1]);
        assert!(decode_clip(&encode_resp(&t)).is_err());
        // Zero dim.
        let mut frame = encode_clip(&t);
        frame[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_clip(&frame).is_err());
        // Length mismatch.
        let mut frame = encode_clip(&t);
        frame.push(0);
        assert!(decode_clip(&frame).is_err());
        // Dimension overflow must not panic.
        let mut frame = encode_clip(&t);
        for i in 0..3 {
            frame[8 + 4 * i..12 + 4 * i].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        assert!(decode_clip(&frame).is_err());
    }

    #[test]
    fn frame_bytes_matches_encoding() {
        let t = Tensor::zeros(&[4, 8, 8]);
        assert_eq!(encode_clip(&t).len(), frame_bytes((4, 8, 8)));
    }
}
