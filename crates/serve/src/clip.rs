//! Binary clip codec for `/infer` payloads.
//!
//! Requests carry a `PEBCLIP1` frame; responses a `PEBRESP2` frame —
//! same layout, little-endian throughout, with the response carrying a
//! CRC-32 footer so routers and clients can detect torn or corrupted
//! worker responses instead of silently forwarding them:
//!
//! ```text
//! [8]  magic          b"PEBCLIP1" / b"PEBRESP2"
//! [4]  u32 d
//! [4]  u32 h
//! [4]  u32 w
//! [d·h·w·4]  f32 data, row-major [D, H, W]
//! [4]  u32 CRC-32 (IEEE) of every preceding byte   (PEBRESP2 only)
//! ```
//!
//! Raw `f32` bits pass through untouched in both directions, so a
//! client can verify the serving layer's bitwise batching-invariance
//! contract end to end (`bench_serve` does exactly that with
//! `Tensor::bit_digest`). The response format is version-bumped from
//! `PEBRESP1`: a v1 frame is rejected with a typed
//! [`ServeError::LegacyFrame`] (old writers cannot silently reach new
//! readers without integrity protection), and a CRC mismatch is a
//! typed [`ServeError::CorruptFrame`] — the `peb-fleet` router treats
//! it as a retryable worker failure.

use peb_tensor::Tensor;

use crate::error::ServeError;

/// Request frame magic.
pub const CLIP_MAGIC: &[u8; 8] = b"PEBCLIP1";
/// Response frame magic (v2: CRC-32 footer).
pub const RESP_MAGIC: &[u8; 8] = b"PEBRESP2";
/// Retired v1 response magic (no integrity footer) — rejected.
pub const LEGACY_RESP_MAGIC: &[u8; 8] = b"PEBRESP1";
/// Frame header size: magic + three u32 dims.
pub const HEADER_BYTES: usize = 8 + 3 * 4;
/// CRC-32 footer size on response frames.
pub const CRC_BYTES: usize = 4;

/// Encodes a `[D, H, W]` tensor as a frame with the given magic.
fn encode(magic: &[u8; 8], t: &Tensor, crc_footer: bool) -> Vec<u8> {
    let s = t.shape();
    debug_assert_eq!(s.len(), 3, "clip frames are rank-3");
    let mut out = Vec::with_capacity(HEADER_BYTES + t.len() * 4 + CRC_BYTES);
    out.extend_from_slice(magic);
    for &d in s {
        out.extend_from_slice(&(d as u32).to_le_bytes());
    }
    for v in t.data() {
        out.extend_from_slice(&v.to_le_bytes());
    }
    if crc_footer {
        let crc = peb_guard::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
    }
    out
}

/// Encodes a request frame (`PEBCLIP1`).
pub fn encode_clip(t: &Tensor) -> Vec<u8> {
    encode(CLIP_MAGIC, t, false)
}

/// Encodes a response frame (`PEBRESP2`, CRC-32 footer included).
pub fn encode_resp(t: &Tensor) -> Vec<u8> {
    encode(RESP_MAGIC, t, true)
}

/// Decodes a frame with the given magic into a `[D, H, W]` tensor.
/// `crc_footer` demands (and verifies) the trailing CRC-32.
fn decode(magic: &[u8; 8], bytes: &[u8], crc_footer: bool) -> Result<Tensor, ServeError> {
    let bad = |detail: String| ServeError::BadClip { detail };
    if bytes.len() < HEADER_BYTES {
        return Err(bad(format!(
            "frame of {} bytes is shorter than the {HEADER_BYTES}-byte header",
            bytes.len()
        )));
    }
    if &bytes[..8] != magic {
        if crc_footer && &bytes[..8] == LEGACY_RESP_MAGIC {
            return Err(ServeError::LegacyFrame {
                got: "PEBRESP1".into(),
                want: "PEBRESP2".into(),
            });
        }
        return Err(bad(format!(
            "bad magic {:?} (expected {:?})",
            String::from_utf8_lossy(&bytes[..8]),
            String::from_utf8_lossy(magic)
        )));
    }
    let payload = if crc_footer {
        if bytes.len() < HEADER_BYTES + CRC_BYTES {
            return Err(bad(format!(
                "response frame of {} bytes has no room for the CRC footer",
                bytes.len()
            )));
        }
        let (payload, footer) = bytes.split_at(bytes.len() - CRC_BYTES);
        let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
        let computed = peb_guard::crc32(payload);
        if stored != computed {
            return Err(ServeError::CorruptFrame { stored, computed });
        }
        payload
    } else {
        bytes
    };
    let dim = |i: usize| -> usize {
        let mut b = [0u8; 4];
        b.copy_from_slice(&payload[8 + 4 * i..8 + 4 * (i + 1)]);
        u32::from_le_bytes(b) as usize
    };
    let (d, h, w) = (dim(0), dim(1), dim(2));
    if d == 0 || h == 0 || w == 0 {
        return Err(bad(format!("zero dimension in {d}x{h}x{w}")));
    }
    let n = d
        .checked_mul(h)
        .and_then(|x| x.checked_mul(w))
        .ok_or_else(|| bad(format!("dimension overflow in {d}x{h}x{w}")))?;
    let want = HEADER_BYTES + n * 4;
    if payload.len() != want {
        return Err(bad(format!(
            "{d}x{h}x{w} needs {want} payload bytes, frame has {}",
            payload.len()
        )));
    }
    let data: Vec<f32> = payload[HEADER_BYTES..]
        .chunks_exact(4)
        .map(|c| {
            let mut b = [0u8; 4];
            b.copy_from_slice(c);
            f32::from_le_bytes(b)
        })
        .collect();
    Tensor::from_vec(data, &[d, h, w]).map_err(|e| bad(e.to_string()))
}

/// Decodes a request frame (`PEBCLIP1`).
pub fn decode_clip(bytes: &[u8]) -> Result<Tensor, ServeError> {
    decode(CLIP_MAGIC, bytes, false)
}

/// Decodes a response frame (`PEBRESP2`), verifying its CRC footer.
pub fn decode_resp(bytes: &[u8]) -> Result<Tensor, ServeError> {
    decode(RESP_MAGIC, bytes, true)
}

/// Cheap integrity check for a response frame without materialising the
/// tensor: magic + CRC footer only. The fleet router runs this on every
/// worker response before forwarding; a failure is a retryable worker
/// fault, not a client error.
pub fn resp_integrity_ok(bytes: &[u8]) -> Result<(), ServeError> {
    if bytes.len() < HEADER_BYTES + CRC_BYTES {
        return Err(ServeError::BadClip {
            detail: format!("response frame of {} bytes is truncated", bytes.len()),
        });
    }
    if &bytes[..8] != RESP_MAGIC {
        if &bytes[..8] == LEGACY_RESP_MAGIC {
            return Err(ServeError::LegacyFrame {
                got: "PEBRESP1".into(),
                want: "PEBRESP2".into(),
            });
        }
        return Err(ServeError::BadClip {
            detail: format!(
                "bad response magic {:?}",
                String::from_utf8_lossy(&bytes[..8])
            ),
        });
    }
    let (payload, footer) = bytes.split_at(bytes.len() - CRC_BYTES);
    let stored = u32::from_le_bytes([footer[0], footer[1], footer[2], footer[3]]);
    let computed = peb_guard::crc32(payload);
    if stored != computed {
        return Err(ServeError::CorruptFrame { stored, computed });
    }
    Ok(())
}

/// Exact wire size of a request frame for a `(d, h, w)` clip.
pub fn frame_bytes(dims: (usize, usize, usize)) -> usize {
    HEADER_BYTES + dims.0 * dims.1 * dims.2 * 4
}

/// Exact wire size of a response frame for a `(d, h, w)` clip (the
/// request size plus the CRC footer).
pub fn resp_frame_bytes(dims: (usize, usize, usize)) -> usize {
    frame_bytes(dims) + CRC_BYTES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_is_bitwise() {
        let t = Tensor::from_vec(
            (0..2 * 3 * 4).map(|i| (i as f32).sqrt() - 1.5).collect(),
            &[2, 3, 4],
        )
        .expect("tensor");
        let back = decode_clip(&encode_clip(&t)).expect("decode");
        assert_eq!(back.shape(), t.shape());
        assert_eq!(back.bit_digest(), t.bit_digest());
        let wire = encode_resp(&t);
        resp_integrity_ok(&wire).expect("integrity");
        let back = decode_resp(&wire).expect("decode");
        assert_eq!(back.bit_digest(), t.bit_digest());
    }

    #[test]
    fn rejects_malformed_frames() {
        // Too short.
        assert!(decode_clip(b"PEBCLIP1").is_err());
        // Wrong magic.
        let t = Tensor::zeros(&[1, 1, 1]);
        assert!(decode_clip(&encode_resp(&t)).is_err());
        // Zero dim.
        let mut frame = encode_clip(&t);
        frame[8..12].copy_from_slice(&0u32.to_le_bytes());
        assert!(decode_clip(&frame).is_err());
        // Length mismatch.
        let mut frame = encode_clip(&t);
        frame.push(0);
        assert!(decode_clip(&frame).is_err());
        // Dimension overflow must not panic.
        let mut frame = encode_clip(&t);
        for i in 0..3 {
            frame[8 + 4 * i..12 + 4 * i].copy_from_slice(&u32::MAX.to_le_bytes());
        }
        assert!(decode_clip(&frame).is_err());
    }

    #[test]
    fn response_crc_detects_any_single_byte_corruption() {
        let t = Tensor::from_vec(
            (0..2 * 2 * 2).map(|i| i as f32 * 0.5 - 1.0).collect(),
            &[2, 2, 2],
        )
        .expect("tensor");
        let wire = encode_resp(&t);
        for i in 8..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x10;
            let err = decode_resp(&bad).expect_err("corruption must be detected");
            assert!(
                matches!(
                    err,
                    ServeError::CorruptFrame { .. } | ServeError::BadClip { .. }
                ),
                "byte {i}: unexpected error {err:?}"
            );
            assert!(resp_integrity_ok(&bad).is_err(), "byte {i} slipped through");
        }
    }

    #[test]
    fn legacy_v1_response_is_a_typed_reject() {
        let t = Tensor::zeros(&[1, 2, 2]);
        // Forge a v1 frame: clip layout with the old response magic.
        let mut v1 = encode_clip(&t);
        v1[..8].copy_from_slice(LEGACY_RESP_MAGIC);
        let err = decode_resp(&v1).expect_err("v1 must be rejected");
        assert!(matches!(err, ServeError::LegacyFrame { .. }), "{err:?}");
        assert!(matches!(
            resp_integrity_ok(&v1).expect_err("v1 reject"),
            ServeError::LegacyFrame { .. }
        ));
    }

    #[test]
    fn frame_bytes_matches_encoding() {
        let t = Tensor::zeros(&[4, 8, 8]);
        assert_eq!(encode_clip(&t).len(), frame_bytes((4, 8, 8)));
        assert_eq!(encode_resp(&t).len(), resp_frame_bytes((4, 8, 8)));
    }
}
