//! Serving configuration (`PEB_SERVE_*` environment variables).

use crate::clip;

/// Model size preset used to build the served architecture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelPreset {
    /// `SdmPebConfig::tiny` — tests and the smoke benchmark.
    Tiny,
    /// `SdmPebConfig::for_grid` — the paper-scale architecture.
    ForGrid,
}

/// Everything the server needs to come up, with env-var overrides.
///
/// | env | field | default |
/// |-----|-------|---------|
/// | `PEB_SERVE_ADDR` | `addr` | `127.0.0.1:7878` |
/// | `PEB_SERVE_GRID` | `grid` (`DxHxW`) | `8x16x16` |
/// | `PEB_SERVE_MODEL` | `preset` (`tiny`/`for-grid`) | `tiny` |
/// | `PEB_SERVE_SEED` | `seed` | `42` |
/// | `PEB_SERVE_MAX_BATCH` | `max_batch` | `8` |
/// | `PEB_SERVE_MAX_WAIT_US` | `max_wait_us` | `500` |
/// | `PEB_SERVE_QUEUE` | `queue_cap` | `64` |
/// | `PEB_SERVE_READY_HWM` | `ready_hwm` | `3·queue_cap/4` |
/// | `PEB_SERVE_WORKERS` | `conn_workers` | `2` |
/// | `PEB_SERVE_THREADS` | `compute_threads` | unset (peb-par default) |
/// | `PEB_SERVE_PREC` | `default_prec` (`f32`/`bf16`/`int8`) | `f32` |
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 lets the OS pick — tests).
    pub addr: String,
    /// Model grid `(D, H, W)`; clips larger than this are rejected 413.
    pub grid: (usize, usize, usize),
    /// Architecture preset.
    pub preset: ModelPreset,
    /// Weight-init seed for the base (un-swapped) model.
    pub seed: u64,
    /// Upper bound on clips folded into one engine batch.
    pub max_batch: usize,
    /// How long the batcher waits for stragglers once one job is in
    /// hand, in microseconds. `0` = never wait (pure greedy drain).
    pub max_wait_us: u64,
    /// Bounded inference queue depth; a full queue sheds with 429.
    pub queue_cap: usize,
    /// Readiness high-water mark: `/readyz` answers 503 while the
    /// queue holds more than this many jobs (or a swap is in flight),
    /// so routers stop sending work *before* the queue fills and 429s
    /// start. `None` → `3·queue_cap/4` after normalisation.
    pub ready_hwm: Option<usize>,
    /// Connection-handling threads (each runs its own accept loop).
    pub conn_workers: usize,
    /// Kernel thread count forced on the engine thread (`None` = the
    /// `peb-par` default). The batching-invariance tests pin this to 1
    /// and 4 — results are bitwise identical either way.
    pub compute_threads: Option<usize>,
    /// Compute precision for requests that do not select one with
    /// `?prec=` (DESIGN §13). Unlike the training-side `PEB_PREC`
    /// latch, `int8` is a valid serving default — inference-only
    /// dynamic quantisation is exactly the serving use case.
    pub default_prec: peb_simd::Prec,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7878".to_string(),
            grid: (8, 16, 16),
            preset: ModelPreset::Tiny,
            seed: 42,
            max_batch: 8,
            max_wait_us: 500,
            queue_cap: 64,
            ready_hwm: None,
            conn_workers: 2,
            compute_threads: None,
            default_prec: peb_simd::Prec::F32,
        }
    }
}

fn env_parse<T: std::str::FromStr>(name: &str) -> Option<T> {
    std::env::var(name).ok().and_then(|v| v.parse().ok())
}

impl ServeConfig {
    /// Defaults overridden by any set `PEB_SERVE_*` variables.
    pub fn from_env() -> Self {
        let mut c = ServeConfig::default();
        if let Ok(v) = std::env::var("PEB_SERVE_ADDR") {
            c.addr = v;
        }
        if let Some(g) = std::env::var("PEB_SERVE_GRID")
            .ok()
            .and_then(|v| parse_grid(&v))
        {
            c.grid = g;
        }
        match std::env::var("PEB_SERVE_MODEL").as_deref() {
            Ok("for-grid" | "for_grid") => c.preset = ModelPreset::ForGrid,
            Ok("tiny") => c.preset = ModelPreset::Tiny,
            _ => {}
        }
        if let Some(v) = env_parse("PEB_SERVE_SEED") {
            c.seed = v;
        }
        if let Some(v) = env_parse("PEB_SERVE_MAX_BATCH") {
            c.max_batch = v;
        }
        if let Some(v) = env_parse("PEB_SERVE_MAX_WAIT_US") {
            c.max_wait_us = v;
        }
        if let Some(v) = env_parse("PEB_SERVE_QUEUE") {
            c.queue_cap = v;
        }
        if let Some(v) = env_parse("PEB_SERVE_READY_HWM") {
            c.ready_hwm = Some(v);
        }
        if let Some(v) = env_parse("PEB_SERVE_WORKERS") {
            c.conn_workers = v;
        }
        if let Some(v) = env_parse::<usize>("PEB_SERVE_THREADS") {
            c.compute_threads = Some(v.max(1));
        }
        if let Some(p) = std::env::var("PEB_SERVE_PREC")
            .ok()
            .and_then(|v| peb_simd::Prec::parse(&v))
        {
            c.default_prec = p;
        }
        c.normalized()
    }

    /// Clamps degenerate values so a typo'd env var cannot wedge the
    /// server (zero-size batches, zero workers, …).
    pub fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.queue_cap = self.queue_cap.max(1);
        self.conn_workers = self.conn_workers.max(1);
        // Default high-water at 3/4 of the queue, clamped into
        // [1, queue_cap] so readiness can neither trip on an empty
        // queue nor stay green past the shed point.
        let hwm = self.ready_hwm.unwrap_or(3 * self.queue_cap / 4);
        self.ready_hwm = Some(hwm.clamp(1, self.queue_cap));
        self
    }

    /// The resolved readiness high-water mark (post-normalisation).
    pub fn ready_hwm(&self) -> usize {
        self.ready_hwm.unwrap_or(3 * self.queue_cap / 4).max(1)
    }

    /// Largest `/infer` body the HTTP layer should accept: one frame at
    /// the model grid, plus slack for the header.
    pub fn max_body_bytes(&self) -> usize {
        clip::frame_bytes(self.grid)
    }
}

/// Parses `DxHxW` (e.g. `8x16x16`).
pub fn parse_grid(s: &str) -> Option<(usize, usize, usize)> {
    let mut it = s.split('x');
    let d = it.next()?.trim().parse().ok()?;
    let h = it.next()?.trim().parse().ok()?;
    let w = it.next()?.trim().parse().ok()?;
    if it.next().is_some() || d == 0 || h == 0 || w == 0 {
        return None;
    }
    Some((d, h, w))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_parses() {
        assert_eq!(parse_grid("8x16x16"), Some((8, 16, 16)));
        assert_eq!(parse_grid(" 1x2x3 "), Some((1, 2, 3)));
        assert_eq!(parse_grid("0x2x3"), None);
        assert_eq!(parse_grid("1x2"), None);
        assert_eq!(parse_grid("1x2x3x4"), None);
        assert_eq!(parse_grid("axbxc"), None);
    }

    #[test]
    fn normalized_clamps_zeros() {
        let c = ServeConfig {
            max_batch: 0,
            queue_cap: 0,
            conn_workers: 0,
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!(c.max_batch, 1);
        assert_eq!(c.queue_cap, 1);
        assert_eq!(c.conn_workers, 1);
        assert_eq!(c.ready_hwm(), 1);
    }

    #[test]
    fn ready_hwm_defaults_to_three_quarters_and_clamps() {
        let c = ServeConfig::default().normalized();
        assert_eq!(c.ready_hwm(), 48, "3/4 of the default 64-deep queue");
        let c = ServeConfig {
            queue_cap: 8,
            ready_hwm: Some(100),
            ..ServeConfig::default()
        }
        .normalized();
        assert_eq!(c.ready_hwm(), 8, "hwm clamps to the queue depth");
    }

    #[test]
    fn max_body_covers_exactly_one_grid_frame() {
        let c = ServeConfig::default();
        assert_eq!(c.max_body_bytes(), clip::frame_bytes(c.grid));
    }
}
