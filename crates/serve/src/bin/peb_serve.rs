//! Standalone serving binary: `PEB_SERVE_* peb_serve`.
//!
//! Binds the configured address, prints it, and serves until killed.

use peb_serve::{ServeConfig, Server};

fn main() {
    let config = ServeConfig::from_env();
    let server = match Server::start(config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("peb-serve: failed to start on {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "peb-serve listening on {} (grid {}x{}x{}, max_batch {}, max_wait {}us, queue {})",
        server.addr(),
        config.grid.0,
        config.grid.1,
        config.grid.2,
        config.max_batch,
        config.max_wait_us,
        config.queue_cap,
    );
    // Serve forever; the process is stopped externally (CI kills it
    // after the smoke window).
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}
