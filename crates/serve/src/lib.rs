//! peb-serve: production inference service for SDM-PEB.
//!
//! Mask-clip → resist-image inference over a dependency-free HTTP/1.1
//! subset, with the three production properties the rest of the
//! workspace builds toward:
//!
//! - **Dynamic batching** — requests arriving within `max_wait_us` of
//!   each other fold into one engine batch (up to `max_batch`), with a
//!   *bitwise* guarantee: a clip's prediction is bit-identical whatever
//!   batch it lands in (see [`sdm_peb::PebPredictor::predict_batch`]).
//! - **Hot-swappable checkpoints** — `POST /swap` splices a `PEBCKPT1`
//!   checkpoint's weights into the serving model between batches; a
//!   corrupt or mismatched file is rejected (409) and the previous
//!   version keeps serving without a dropped request.
//! - **Backpressure** — the inference queue is bounded; when it is
//!   full, requests are shed immediately with 429 instead of queueing
//!   into latency collapse. `/readyz` goes 503 *before* that point (at
//!   the queue high-water mark, or while a swap is in flight) so
//!   routers drain away early.
//! - **Deadlines** — an `X-Peb-Deadline-Us` request header propagates
//!   the caller's remaining budget; the batch coalescer sheds expired
//!   jobs with 504 rather than serving answers nobody is waiting for.
//! - **Integrity** — `/infer` responses are `PEBRESP2` frames carrying
//!   a CRC-32 footer, so a proxy can reject a torn or corrupted frame
//!   (502) instead of forwarding garbage bits.
//!
//! ```no_run
//! use peb_serve::{Client, ServeConfig, Server};
//! use peb_tensor::Tensor;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     ..ServeConfig::default()
//! }).expect("bind");
//! let mut client = Client::connect(server.addr()).expect("connect");
//! let y = client.infer(&Tensor::full(&[8, 16, 16], 0.3)).expect("infer");
//! assert_eq!(y.shape(), &[8, 16, 16]);
//! server.shutdown();
//! ```
//!
//! Observability: per-request spans (`serve.request`, `serve.batch`,
//! `serve.swap`) and counters (`serve_requests`, `serve_batches`,
//! `serve_shed`, `serve_hotswaps`) flow through `peb-obs` under
//! `PEB_TRACE`. Fault injection: `PEB_CHAOS=truncate-ckpt|bitflip-ckpt`
//! corrupts the next hot-swap load, `PEB_CHAOS=disconnect` drops the
//! next client mid-response, and the fleet-grade faults
//! `kill-worker[:N]` (abort at the top of a batch), `hang-worker[:N]`
//! (wedge every connection thread) and `corrupt-resp[:N]` (flip a
//! response byte so the CRC footer fails) exercise supervisor restart
//! and router failover (see `peb-guard`'s chaos module).

pub mod client;
pub mod clip;
pub mod config;
pub mod engine;
pub mod error;
pub mod http;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError, ClientResponse, ClientTimeouts};
pub use config::{ModelPreset, ServeConfig};
pub use engine::{Engine, EngineHandle};
pub use error::{Result, ServeError};
pub use http::{HttpError, Method, Request, RequestParser};
pub use server::Server;
pub use stats::{ModelVersion, ServeStats};
