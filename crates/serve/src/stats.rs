//! Lock-free serving counters, the batch-size histogram, and the live
//! model-version record backing `/stats` and `/version`.
//!
//! Counters are mirrored into `peb-obs` (`serve_requests`,
//! `serve_batches`, `serve_shed`, `serve_hotswaps`) so a `PEB_TRACE=1`
//! run folds serving activity into the same profile as the kernels, but
//! the local atomics here are unconditional — `/stats` must work even
//! with tracing off.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use peb_simd::Prec;

use crate::config::ServeConfig;

/// Histogram buckets: batch sizes `1..=MAX_HIST_BATCH`, larger batches
/// collapse into the last bucket.
pub const MAX_HIST_BATCH: usize = 32;

/// The model version currently answering `/infer`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelVersion {
    /// Monotonic version number; 0 is the seed-initialised base model,
    /// each successful hot-swap increments it.
    pub version: u64,
    /// Training epoch recorded in the loaded checkpoint (0 for base).
    pub epoch: u64,
    /// Where the weights came from (`"seed"` or a checkpoint path).
    pub source: String,
    /// CRC-32 of the loaded checkpoint (0 for the seed model).
    pub crc: u32,
}

impl ModelVersion {
    /// The seed-initialised base model, version 0.
    pub fn base(seed: u64) -> Self {
        ModelVersion {
            version: 0,
            epoch: 0,
            source: format!("seed:{seed}"),
            crc: 0,
        }
    }
}

/// Shared serving statistics (one per server, `Arc`-cloned everywhere).
#[derive(Debug)]
pub struct ServeStats {
    /// Requests that reached a terminal response (any status).
    pub requests: AtomicU64,
    /// Engine batches executed.
    pub batches: AtomicU64,
    /// Requests shed with 429 (queue full).
    pub shed: AtomicU64,
    /// Requests shed with 504 (propagated deadline expired before the
    /// batch coalescer could run them).
    pub deadline_shed: AtomicU64,
    /// Jobs currently accepted into the bounded queue and not yet
    /// drained into a batch — the `/readyz` high-water signal.
    pub queue_depth: AtomicU64,
    /// Checkpoint swaps submitted and not yet committed/rejected; a
    /// non-zero value turns `/readyz` 503 (the splice happens between
    /// batches, so routers should drain away first).
    pub swaps_inflight: AtomicU64,
    /// Successful checkpoint hot-swaps.
    pub hotswaps: AtomicU64,
    /// Hot-swaps rejected (corrupt/mismatched checkpoint).
    pub swaps_rejected: AtomicU64,
    /// Inferences served by replaying a cached execution plan.
    pub plan_hits: AtomicU64,
    /// Inferences that recorded a fresh execution plan (cache miss).
    pub plan_misses: AtomicU64,
    /// Plan-cache entries invalidated by `/swap` (plans are dropped
    /// atomically with the model splice, between batches).
    pub plan_invalidations: AtomicU64,
    /// High-water mark of arena bytes held by cached plans.
    pub arena_hwm_bytes: AtomicU64,
    /// Batch-size histogram; index `i` counts batches of size `i + 1`
    /// (last bucket also absorbs anything larger).
    pub batch_hist: [AtomicU64; MAX_HIST_BATCH],
    /// Inferences served per precision, indexed by `Prec as usize`
    /// (f32, bf16, int8).
    pub prec_infers: [AtomicU64; 3],
    /// Batching knob: upper bound on clips folded into one batch.
    pub max_batch: usize,
    /// Batching knob: straggler wait in microseconds.
    pub max_wait_us: u64,
    /// Bounded inference queue depth (full → 429).
    pub queue_cap: usize,
    /// Readiness high-water mark (`queue_depth > ready_hwm` → 503 on
    /// `/readyz`).
    pub ready_hwm: usize,
    /// Precision applied when a request does not pick one (`?prec=`).
    pub default_prec: Prec,
    version: Mutex<ModelVersion>,
}

impl ServeStats {
    /// Fresh stats advertising the seed base model and the serving
    /// knobs `/stats` reports (batching limits, queue depth, default
    /// precision).
    pub fn new(config: &ServeConfig) -> Self {
        ServeStats {
            requests: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            deadline_shed: AtomicU64::new(0),
            queue_depth: AtomicU64::new(0),
            swaps_inflight: AtomicU64::new(0),
            hotswaps: AtomicU64::new(0),
            swaps_rejected: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            plan_invalidations: AtomicU64::new(0),
            arena_hwm_bytes: AtomicU64::new(0),
            batch_hist: std::array::from_fn(|_| AtomicU64::new(0)),
            prec_infers: std::array::from_fn(|_| AtomicU64::new(0)),
            max_batch: config.max_batch,
            max_wait_us: config.max_wait_us,
            queue_cap: config.queue_cap,
            ready_hwm: config.ready_hwm(),
            default_prec: config.default_prec,
            version: Mutex::new(ModelVersion::base(config.seed)),
        }
    }

    /// Records one terminal response.
    pub fn tick_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::ServeRequests, 1);
    }

    /// Records one executed batch of `n` clips.
    pub fn tick_batch(&self, n: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::ServeBatches, 1);
        let bucket = n.clamp(1, MAX_HIST_BATCH) - 1;
        self.batch_hist[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one inference served at `p`.
    pub fn tick_prec_infer(&self, p: Prec) {
        self.prec_infers[p as usize].fetch_add(1, Ordering::Relaxed);
    }

    /// Records one shed request.
    pub fn tick_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::ServeShed, 1);
    }

    /// Records one request shed because its deadline expired (504).
    pub fn tick_deadline_shed(&self) {
        self.deadline_shed.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::FleetDeadlineShed, 1);
    }

    /// Notes one job accepted into the bounded queue.
    pub fn queue_push(&self) {
        self.queue_depth.fetch_add(1, Ordering::Relaxed);
    }

    /// Notes one job drained from the queue into a batch.
    pub fn queue_pop(&self) {
        // Saturating: a racing pop on a fresh stats block must not wrap.
        let _ = self
            .queue_depth
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |d| d.checked_sub(1));
    }

    /// Whether the server should advertise readiness: the queue is at
    /// or below the high-water mark and no swap is in flight. Returns
    /// the failing condition otherwise.
    pub fn readiness(&self) -> Result<(), String> {
        let depth = self.queue_depth.load(Ordering::Relaxed);
        if depth > self.ready_hwm as u64 {
            return Err(format!(
                "queue depth {depth} above high-water mark {}",
                self.ready_hwm
            ));
        }
        let swaps = self.swaps_inflight.load(Ordering::Relaxed);
        if swaps > 0 {
            return Err(format!("{swaps} checkpoint swap(s) in flight"));
        }
        Ok(())
    }

    /// Records a successful hot-swap and publishes the new version.
    pub fn tick_hotswap(&self, v: ModelVersion) {
        self.hotswaps.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::ServeHotswaps, 1);
        *self.version_guard() = v;
    }

    /// Records a rejected hot-swap (version unchanged).
    pub fn tick_swap_rejected(&self) {
        self.swaps_rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one inference replayed through a cached plan.
    pub fn tick_plan_hit(&self) {
        self.plan_hits.fetch_add(1, Ordering::Relaxed);
        peb_obs::count(peb_obs::Counter::PlanHits, 1);
    }

    /// Records one inference that recorded a fresh plan.
    pub fn tick_plan_miss(&self) {
        self.plan_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` plan-cache entries dropped by a hot-swap.
    pub fn tick_plan_invalidations(&self, n: u64) {
        self.plan_invalidations.fetch_add(n, Ordering::Relaxed);
    }

    /// Raises the arena high-water mark to at least `bytes`.
    pub fn note_arena_bytes(&self, bytes: u64) {
        self.arena_hwm_bytes.fetch_max(bytes, Ordering::Relaxed);
    }

    /// The currently-served model version.
    pub fn version(&self) -> ModelVersion {
        self.version_guard().clone()
    }

    fn version_guard(&self) -> std::sync::MutexGuard<'_, ModelVersion> {
        self.version.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Non-empty `(batch_size, count)` histogram entries.
    pub fn batch_hist_entries(&self) -> Vec<(usize, u64)> {
        self.batch_hist
            .iter()
            .enumerate()
            .filter_map(|(i, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((i + 1, n))
            })
            .collect()
    }

    /// Renders the `/stats` JSON body.
    pub fn to_json(&self) -> String {
        let v = self.version();
        let hist: Vec<String> = self
            .batch_hist_entries()
            .iter()
            .map(|(size, count)| format!("\"{size}\":{count}"))
            .collect();
        let prec: Vec<String> = [Prec::F32, Prec::Bf16, Prec::Int8]
            .iter()
            .map(|p| {
                format!(
                    "\"{}\":{}",
                    p.name(),
                    self.prec_infers[*p as usize].load(Ordering::Relaxed)
                )
            })
            .collect();
        format!(
            "{{\"requests\":{},\"batches\":{},\"shed\":{},\"deadline_shed\":{},\"queue_depth\":{},\"ready_hwm\":{},\"swaps_inflight\":{},\"hotswaps\":{},\"swaps_rejected\":{},\"plan_hits\":{},\"plan_misses\":{},\"plan_invalidations\":{},\"arena_hwm_bytes\":{},\"max_batch\":{},\"max_wait_us\":{},\"queue_cap\":{},\"precision\":{},\"prec_infers\":{{{}}},\"batch_hist\":{{{}}},\"model\":{}}}",
            self.requests.load(Ordering::Relaxed),
            self.batches.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.deadline_shed.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            self.ready_hwm,
            self.swaps_inflight.load(Ordering::Relaxed),
            self.hotswaps.load(Ordering::Relaxed),
            self.swaps_rejected.load(Ordering::Relaxed),
            self.plan_hits.load(Ordering::Relaxed),
            self.plan_misses.load(Ordering::Relaxed),
            self.plan_invalidations.load(Ordering::Relaxed),
            self.arena_hwm_bytes.load(Ordering::Relaxed),
            self.max_batch,
            self.max_wait_us,
            self.queue_cap,
            json_string(self.default_prec.name()),
            prec.join(","),
            hist.join(","),
            version_json(&v),
        )
    }
}

/// Renders the `/version` JSON body.
pub fn version_json(v: &ModelVersion) -> String {
    format!(
        "{{\"version\":{},\"epoch\":{},\"source\":{},\"crc\":{}}}",
        v.version,
        v.epoch,
        json_string(&v.source),
        v.crc
    )
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with_seed(seed: u64) -> ServeStats {
        ServeStats::new(&ServeConfig {
            seed,
            ..ServeConfig::default()
        })
    }

    #[test]
    fn histogram_buckets_by_size() {
        let s = stats_with_seed(7);
        s.tick_batch(1);
        s.tick_batch(1);
        s.tick_batch(4);
        s.tick_batch(MAX_HIST_BATCH + 100); // collapses into last bucket
        assert_eq!(
            s.batch_hist_entries(),
            vec![(1, 2), (4, 1), (MAX_HIST_BATCH, 1)]
        );
    }

    #[test]
    fn version_updates_on_hotswap() {
        let s = stats_with_seed(7);
        assert_eq!(s.version().version, 0);
        assert_eq!(s.version().source, "seed:7");
        s.tick_hotswap(ModelVersion {
            version: 1,
            epoch: 3,
            source: "/tmp/ckpt_3.peb".into(),
            crc: 0xDEAD_BEEF,
        });
        assert_eq!(s.version().version, 1);
        assert_eq!(s.hotswaps.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn json_is_wellformed_enough() {
        let s = stats_with_seed(1);
        s.tick_request();
        s.tick_batch(2);
        s.tick_prec_infer(Prec::Int8);
        let j = s.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"requests\":1"));
        assert!(j.contains("\"batch_hist\":{\"2\":1}"));
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn readiness_tracks_queue_depth_and_swaps() {
        let s = ServeStats::new(&ServeConfig {
            queue_cap: 4,
            ready_hwm: Some(2),
            ..ServeConfig::default()
        });
        assert!(s.readiness().is_ok());
        s.queue_push();
        s.queue_push();
        assert!(s.readiness().is_ok(), "at the high-water mark is ready");
        s.queue_push();
        assert!(s.readiness().is_err(), "above the high-water mark");
        s.queue_pop();
        assert!(s.readiness().is_ok());
        s.swaps_inflight.fetch_add(1, Ordering::Relaxed);
        assert!(s.readiness().is_err(), "swap in flight blocks readiness");
        s.swaps_inflight.fetch_sub(1, Ordering::Relaxed);
        assert!(s.readiness().is_ok());
        // Saturating pop: never wraps below zero.
        s.queue_pop();
        s.queue_pop();
        s.queue_pop();
        assert_eq!(s.queue_depth.load(Ordering::Relaxed), 0);
        let j = s.to_json();
        assert!(j.contains("\"ready_hwm\":2"), "{j}");
        assert!(j.contains("\"queue_depth\":0"), "{j}");
        assert!(j.contains("\"deadline_shed\":0"), "{j}");
        assert!(j.contains("\"swaps_inflight\":0"), "{j}");
    }

    #[test]
    fn json_reports_knobs_and_precision_counters() {
        let s = ServeStats::new(&ServeConfig {
            seed: 9,
            max_batch: 5,
            max_wait_us: 123,
            queue_cap: 17,
            default_prec: Prec::Bf16,
            ..ServeConfig::default()
        });
        s.tick_prec_infer(Prec::Bf16);
        s.tick_prec_infer(Prec::Bf16);
        s.tick_prec_infer(Prec::F32);
        let j = s.to_json();
        assert!(j.contains("\"max_batch\":5"), "{j}");
        assert!(j.contains("\"max_wait_us\":123"), "{j}");
        assert!(j.contains("\"queue_cap\":17"), "{j}");
        assert!(j.contains("\"precision\":\"bf16\""), "{j}");
        assert!(
            j.contains("\"prec_infers\":{\"f32\":1,\"bf16\":2,\"int8\":0}"),
            "{j}"
        );
    }
}
