//! A minimal, dependency-free HTTP/1.1 subset: incremental request
//! parsing and response encoding.
//!
//! The parser is a byte-stream state machine built for a blocking
//! socket loop: [`RequestParser::feed`] appends whatever `read` returned
//! (any split, any size, including one byte at a time) and
//! [`RequestParser::poll`] yields complete requests in order, which
//! gives pipelining for free. Every malformed input maps to a typed
//! [`HttpError`] carrying its HTTP status — the parser never panics and
//! never silently resynchronises (after an error the connection is
//! poisoned and must be closed, matching RFC 9112 §2.2).
//!
//! Scope: request line + headers + `Content-Length` bodies. Chunked
//! transfer encoding is deliberately rejected with `501` — no client in
//! this workspace produces it, and accepting it would widen the attack
//! surface of a hand-rolled parser for no benefit.

use std::fmt;

/// Hard cap on the request head (request line + headers + CRLFCRLF).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Hard cap on the number of header fields.
pub const MAX_HEADERS: usize = 64;
/// Default cap on `Content-Length` bodies (overridable per parser).
pub const DEFAULT_MAX_BODY_BYTES: usize = 64 << 20;

/// Typed protocol violation, each with a deterministic response status.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The request line is not `METHOD SP TARGET SP HTTP/1.x`.
    BadRequestLine {
        /// What was malformed.
        detail: String,
    },
    /// The HTTP version is not 1.0 or 1.1.
    UnsupportedVersion {
        /// The version token received.
        got: String,
    },
    /// A header field violates `name: value` with a token name.
    BadHeader {
        /// What was malformed.
        detail: String,
    },
    /// More than [`MAX_HEADERS`] header fields.
    TooManyHeaders,
    /// The head exceeds [`MAX_HEAD_BYTES`] without terminating.
    HeadTooLarge,
    /// `Content-Length` is absent where required, unparsable, or listed
    /// twice with conflicting values.
    BadContentLength {
        /// What was malformed.
        detail: String,
    },
    /// The declared body exceeds the parser's body cap.
    BodyTooLarge {
        /// Declared length.
        declared: usize,
        /// Configured cap.
        max: usize,
    },
    /// `Transfer-Encoding` is outside this server's subset.
    UnsupportedTransferEncoding,
}

impl HttpError {
    /// The HTTP status this protocol error is reported as.
    pub fn status(&self) -> u16 {
        match self {
            HttpError::BadRequestLine { .. }
            | HttpError::BadHeader { .. }
            | HttpError::BadContentLength { .. } => 400,
            HttpError::UnsupportedVersion { .. } => 505,
            HttpError::TooManyHeaders | HttpError::HeadTooLarge => 431,
            HttpError::BodyTooLarge { .. } => 413,
            HttpError::UnsupportedTransferEncoding => 501,
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::BadRequestLine { detail } => write!(f, "bad request line: {detail}"),
            HttpError::UnsupportedVersion { got } => write!(f, "unsupported version {got:?}"),
            HttpError::BadHeader { detail } => write!(f, "bad header: {detail}"),
            HttpError::TooManyHeaders => write!(f, "more than {MAX_HEADERS} headers"),
            HttpError::HeadTooLarge => write!(f, "head exceeds {MAX_HEAD_BYTES} bytes"),
            HttpError::BadContentLength { detail } => write!(f, "bad content-length: {detail}"),
            HttpError::BodyTooLarge { declared, max } => {
                write!(f, "declared body {declared} exceeds cap {max}")
            }
            HttpError::UnsupportedTransferEncoding => {
                write!(f, "transfer-encoding not supported (use content-length)")
            }
        }
    }
}

impl std::error::Error for HttpError {}

/// Request method within the served subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Method {
    /// `GET`.
    Get,
    /// `POST`.
    Post,
    /// Any other valid token (the router answers 405).
    Other(String),
}

impl Method {
    fn from_token(tok: &str) -> Self {
        match tok {
            "GET" => Method::Get,
            "POST" => Method::Post,
            other => Method::Other(other.to_string()),
        }
    }
}

/// One fully-received request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Parsed method.
    pub method: Method,
    /// Raw request target (path + optional query), undecoded.
    pub target: String,
    /// Header fields in wire order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The `Content-Length` body (empty when the header is absent).
    pub body: Vec<u8>,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First header value for `name` (already lower-cased keys).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// The target's path component (query stripped).
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map_or(self.target.as_str(), |(p, _)| p)
    }

    /// The target's query string (without the `?`), when present.
    pub fn query(&self) -> Option<&str> {
        self.target.split_once('?').map(|(_, q)| q)
    }
}

/// Parsed head, cached between polls while the body streams in.
#[derive(Debug, Clone)]
struct Head {
    method: Method,
    target: String,
    headers: Vec<(String, String)>,
    head_len: usize,
    body_len: usize,
    keep_alive: bool,
}

/// Incremental request parser for one connection.
#[derive(Debug)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<Head>,
    max_body: usize,
    poisoned: bool,
}

impl RequestParser {
    /// Parser with the default body cap.
    pub fn new() -> Self {
        Self::with_max_body(DEFAULT_MAX_BODY_BYTES)
    }

    /// Parser with a custom body cap (the serve config derives it from
    /// the model grid).
    pub fn with_max_body(max_body: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            head: None,
            max_body,
            poisoned: false,
        }
    }

    /// Appends raw bytes from the socket.
    pub fn feed(&mut self, bytes: &[u8]) {
        if !self.poisoned {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes currently buffered and not yet consumed by a request.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Yields the next complete request, `Ok(None)` when more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns the first [`HttpError`] the stream violates; the parser
    /// is then poisoned and every later poll repeats an error (the
    /// connection must be closed).
    pub fn poll(&mut self) -> Result<Option<Request>, HttpError> {
        if self.poisoned {
            return Err(HttpError::BadRequestLine {
                detail: "parser poisoned by an earlier protocol error".into(),
            });
        }
        match self.poll_inner() {
            Ok(r) => Ok(r),
            Err(e) => {
                self.poisoned = true;
                Err(e)
            }
        }
    }

    fn poll_inner(&mut self) -> Result<Option<Request>, HttpError> {
        if self.head.is_none() {
            let window = &self.buf[..self.buf.len().min(MAX_HEAD_BYTES)];
            let Some(head_end) = find_crlfcrlf(window) else {
                if self.buf.len() >= MAX_HEAD_BYTES {
                    return Err(HttpError::HeadTooLarge);
                }
                return Ok(None);
            };
            let head = parse_head(&self.buf[..head_end], head_end + 4, self.max_body)?;
            self.head = Some(head);
        }
        let Some(head) = &self.head else {
            return Ok(None);
        };
        let total = head.head_len + head.body_len;
        if self.buf.len() < total {
            return Ok(None);
        }
        let head = match self.head.take() {
            Some(h) => h,
            None => return Ok(None),
        };
        let body = self.buf[head.head_len..total].to_vec();
        self.buf.drain(..total);
        Ok(Some(Request {
            method: head.method,
            target: head.target,
            headers: head.headers,
            body,
            keep_alive: head.keep_alive,
        }))
    }
}

impl Default for RequestParser {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the first `\r\n\r\n` (start of the terminator).
fn find_crlfcrlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn header_name_is_token(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b"!#$%&'*+-.^_`|~".contains(&b))
}

fn parse_head(head: &[u8], head_len: usize, max_body: usize) -> Result<Head, HttpError> {
    let text = std::str::from_utf8(head).map_err(|_| HttpError::BadHeader {
        detail: "head is not valid UTF-8".into(),
    })?;
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split(' ');
    let (method_tok, target, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v)) if parts.next().is_none() => (m, t, v),
        _ => {
            return Err(HttpError::BadRequestLine {
                detail: format!("expected `METHOD SP TARGET SP VERSION`, got {request_line:?}"),
            })
        }
    };
    if method_tok.is_empty() || !header_name_is_token(method_tok) {
        return Err(HttpError::BadRequestLine {
            detail: format!("invalid method token {method_tok:?}"),
        });
    }
    if target.is_empty() || target.bytes().any(|b| b <= b' ' || b == 0x7f) {
        return Err(HttpError::BadRequestLine {
            detail: format!("invalid target {target:?}"),
        });
    }
    let keep_alive_default = match version {
        "HTTP/1.1" => true,
        "HTTP/1.0" => false,
        other => {
            return Err(HttpError::UnsupportedVersion { got: other.into() });
        }
    };

    let mut headers = Vec::new();
    let mut content_length: Option<usize> = None;
    let mut connection: Option<String> = None;
    for line in lines {
        if headers.len() >= MAX_HEADERS {
            return Err(HttpError::TooManyHeaders);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::BadHeader {
                detail: format!("no colon in {line:?}"),
            });
        };
        if !header_name_is_token(name) {
            return Err(HttpError::BadHeader {
                detail: format!("invalid field name {name:?}"),
            });
        }
        let name = name.to_ascii_lowercase();
        let value = value.trim().to_string();
        match name.as_str() {
            "content-length" => {
                let n: usize = value.parse().map_err(|_| HttpError::BadContentLength {
                    detail: format!("unparsable value {value:?}"),
                })?;
                if let Some(prev) = content_length {
                    if prev != n {
                        return Err(HttpError::BadContentLength {
                            detail: format!("conflicting values {prev} and {n}"),
                        });
                    }
                }
                content_length = Some(n);
            }
            "transfer-encoding" => {
                return Err(HttpError::UnsupportedTransferEncoding);
            }
            "connection" => connection = Some(value.to_ascii_lowercase()),
            _ => {}
        }
        headers.push((name, value));
    }

    let body_len = content_length.unwrap_or(0);
    if body_len > max_body {
        return Err(HttpError::BodyTooLarge {
            declared: body_len,
            max: max_body,
        });
    }
    let keep_alive = match connection.as_deref() {
        Some("close") => false,
        Some("keep-alive") => true,
        _ => keep_alive_default,
    };
    Ok(Head {
        method: Method::from_token(method_tok),
        target: target.to_string(),
        headers,
        head_len,
        body_len,
        keep_alive,
    })
}

/// Encodes a complete response with `Content-Length` framing.
pub fn encode_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let reason = reason_phrase(status);
    let mut out = Vec::with_capacity(128 + body.len());
    out.extend_from_slice(
        format!(
            "HTTP/1.1 {status} {reason}\r\ncontent-type: {content_type}\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
            body.len(),
            if keep_alive { "keep-alive" } else { "close" },
        )
        .as_bytes(),
    );
    out.extend_from_slice(body);
    out
}

/// Canonical reason phrase for the statuses this server emits.
pub fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Content Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Vec<Request>, HttpError> {
        let mut p = RequestParser::new();
        p.feed(bytes);
        let mut out = Vec::new();
        while let Some(r) = p.poll()? {
            out.push(r);
        }
        Ok(out)
    }

    #[test]
    fn parses_a_simple_get() {
        let reqs = parse_all(b"GET /healthz HTTP/1.1\r\nhost: x\r\n\r\n").expect("parses");
        assert_eq!(reqs.len(), 1);
        assert_eq!(reqs[0].method, Method::Get);
        assert_eq!(reqs[0].path(), "/healthz");
        assert!(reqs[0].keep_alive);
        assert!(reqs[0].body.is_empty());
    }

    #[test]
    fn parses_post_with_body_split_across_feeds() {
        let wire = b"POST /infer HTTP/1.1\r\ncontent-length: 5\r\n\r\nhello";
        for cut in 0..wire.len() {
            let mut p = RequestParser::new();
            p.feed(&wire[..cut]);
            let early = p.poll().expect("no error on prefix");
            p.feed(&wire[cut..]);
            let req = p.poll().expect("parses").or(early).expect("complete");
            assert_eq!(req.body, b"hello");
            assert_eq!(req.method, Method::Post);
        }
    }

    #[test]
    fn pipelined_requests_come_out_in_order() {
        let reqs = parse_all(
            b"GET /a HTTP/1.1\r\n\r\nPOST /b HTTP/1.1\r\ncontent-length: 2\r\n\r\nxyGET /c HTTP/1.1\r\n\r\n",
        )
        .expect("parses");
        assert_eq!(reqs.len(), 3);
        assert_eq!(reqs[0].target, "/a");
        assert_eq!(reqs[1].body, b"xy");
        assert_eq!(reqs[2].target, "/c");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let reqs = parse_all(b"GET / HTTP/1.1\r\nconnection: close\r\n\r\n").expect("parses");
        assert!(!reqs[0].keep_alive);
        let reqs = parse_all(b"GET / HTTP/1.0\r\n\r\n").expect("parses");
        assert!(!reqs[0].keep_alive);
    }

    #[test]
    fn oversized_head_is_a_431() {
        let mut p = RequestParser::new();
        p.feed(b"GET / HTTP/1.1\r\n");
        p.feed(&vec![b'a'; MAX_HEAD_BYTES]);
        let err = p.poll().expect_err("must reject");
        assert_eq!(err, HttpError::HeadTooLarge);
        assert_eq!(err.status(), 431);
    }

    #[test]
    fn oversized_body_is_a_413() {
        let mut p = RequestParser::with_max_body(10);
        p.feed(b"POST / HTTP/1.1\r\ncontent-length: 11\r\n\r\n");
        let err = p.poll().expect_err("must reject");
        assert_eq!(err.status(), 413);
    }

    #[test]
    fn garbage_is_typed_not_a_panic() {
        for bad in [
            &b"\0\0\0\0\r\n\r\n"[..],
            b"GET\r\n\r\n",
            b"GET / HTTP/2\r\n\r\n",
            b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n",
            b"GET / HTTP/1.1\r\ncontent-length: nope\r\n\r\n",
            b"POST / HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
            b"GET /with space HTTP/1.1\r\n\r\n",
            b"\xff\xfe / HTTP/1.1\r\n\r\n",
        ] {
            let err = parse_all(bad).expect_err("typed error");
            assert!(err.status() >= 400, "{err}");
        }
    }

    #[test]
    fn parser_poisons_after_an_error() {
        let mut p = RequestParser::new();
        p.feed(b"BAD\r\n\r\n");
        assert!(p.poll().is_err());
        p.feed(b"GET / HTTP/1.1\r\n\r\n");
        assert!(p.poll().is_err(), "poisoned parser must not resync");
    }

    #[test]
    fn response_roundtrips_framing() {
        let wire = encode_response(200, "text/plain", b"ok\n", true);
        let text = String::from_utf8(wire).expect("ascii");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 3\r\n"));
        assert!(text.ends_with("\r\n\r\nok\n"));
    }
}
