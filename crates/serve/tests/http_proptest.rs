//! Property fuzz for the HTTP/1.1-subset parser: arbitrary byte
//! streams, arbitrary read-boundary splits, oversized heads/bodies,
//! pipelining, and single-byte mutations of valid traffic must all
//! yield either a parsed request or a typed [`HttpError`] — never a
//! panic, and never a wrong framing decision.

use peb_serve::http::{HttpError, Method, Request, RequestParser, MAX_HEAD_BYTES};
use proptest::prelude::*;

/// Feeds `bytes` through a parser in chunk sizes drawn from `chunks`
/// (cycled), polling after every feed — the worst-case interleaving a
/// slow network can produce.
fn parse_stream(bytes: &[u8], chunks: &[u8], max_body: usize) -> Result<Vec<Request>, HttpError> {
    let mut p = RequestParser::with_max_body(max_body);
    let mut out = Vec::new();
    let mut i = 0;
    let mut k = 0;
    while i < bytes.len() {
        let step = (chunks.get(k % chunks.len().max(1)).copied().unwrap_or(7) as usize).max(1);
        k += 1;
        let end = (i + step).min(bytes.len());
        p.feed(&bytes[i..end]);
        i = end;
        loop {
            match p.poll() {
                Ok(Some(r)) => out.push(r),
                Ok(None) => break,
                Err(e) => return Err(e),
            }
        }
    }
    Ok(out)
}

/// Derives a deterministic list of valid requests from raw spec bytes.
fn build_requests(spec: &[u8]) -> Vec<(Method, String, Vec<u8>)> {
    const PATH_CHARS: &[u8] = b"abcdefghijklmnopqrstuvwxyz0123456789-._~/";
    spec.chunks(8)
        .map(|c| {
            let method = if c[0] % 2 == 0 {
                Method::Get
            } else {
                Method::Post
            };
            let target: String = std::iter::once('/')
                .chain(
                    c.iter()
                        .skip(1)
                        .map(|&b| PATH_CHARS[b as usize % PATH_CHARS.len()] as char),
                )
                .collect();
            let body_len = if method == Method::Post {
                c.iter().map(|&b| b as usize).sum::<usize>() % 100
            } else {
                0
            };
            let body: Vec<u8> = (0..body_len).map(|i| (i as u8).wrapping_mul(31)).collect();
            (method, target, body)
        })
        .collect()
}

fn encode_requests(reqs: &[(Method, String, Vec<u8>)]) -> Vec<u8> {
    let mut wire = Vec::new();
    for (method, target, body) in reqs {
        let m = match method {
            Method::Get => "GET",
            Method::Post => "POST",
            Method::Other(s) => s.as_str(),
        };
        wire.extend_from_slice(
            format!(
                "{m} {target} HTTP/1.1\r\nhost: fuzz\r\ncontent-length: {}\r\n\r\n",
                body.len()
            )
            .as_bytes(),
        );
        wire.extend_from_slice(body);
    }
    wire
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn arbitrary_bytes_never_panic_and_errors_are_typed(
        bytes in prop::collection::vec(0u8..=255, 0..1024),
        chunks in prop::collection::vec(1u8..=64, 1..32),
    ) {
        match parse_stream(&bytes, &chunks, 4096) {
            Ok(reqs) => {
                for r in &reqs {
                    prop_assert!(!r.target.is_empty());
                }
            }
            Err(e) => {
                let s = e.status();
                prop_assert!((400..=599).contains(&s), "status {s} for {e}");
            }
        }
    }

    #[test]
    fn pipelined_valid_requests_survive_any_split(
        spec in prop::collection::vec(0u8..=255, 8..160),
        chunks in prop::collection::vec(1u8..=64, 1..32),
    ) {
        let reqs = build_requests(&spec);
        let wire = encode_requests(&reqs);
        let parsed = match parse_stream(&wire, &chunks, 4096) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError(format!("valid traffic rejected: {e}"))),
        };
        prop_assert_eq!(parsed.len(), reqs.len());
        for ((method, target, body), got) in reqs.iter().zip(&parsed) {
            prop_assert_eq!(&got.method, method);
            prop_assert_eq!(&got.target, target);
            prop_assert_eq!(&got.body, body);
            prop_assert!(got.keep_alive);
        }
    }

    #[test]
    fn single_byte_mutations_never_panic(
        idx in 0usize..4096,
        val in 0u8..=255,
        chunks in prop::collection::vec(1u8..=16, 1..8),
    ) {
        let reqs = build_requests(&[3, 200, 41, 7, 99, 250, 12, 77, 8, 1, 2, 3, 4, 5, 6, 7]);
        let mut wire = encode_requests(&reqs);
        let i = idx % wire.len();
        wire[i] = val;
        match parse_stream(&wire, &chunks, 4096) {
            Ok(_) => {}
            Err(e) => prop_assert!((400..=599).contains(&e.status())),
        }
    }

    #[test]
    fn oversized_heads_are_431(
        pad in MAX_HEAD_BYTES..MAX_HEAD_BYTES * 2,
        chunks in prop::collection::vec(1u8..=64, 1..8),
    ) {
        let mut wire = b"GET / HTTP/1.1\r\nx-pad: ".to_vec();
        wire.extend(std::iter::repeat_n(b'a', pad));
        // No terminator: the head just keeps growing past the cap.
        let err = match parse_stream(&wire, &chunks, 4096) {
            Err(e) => e,
            Ok(r) => return Err(TestCaseError(format!("accepted oversized head: {r:?}"))),
        };
        prop_assert_eq!(err.status(), 431);
    }

    #[test]
    fn declared_bodies_over_cap_are_413(
        max_body in 1usize..4096,
        over in 1usize..4096,
    ) {
        let wire = format!(
            "POST /infer HTTP/1.1\r\ncontent-length: {}\r\n\r\n",
            max_body + over
        );
        let err = match parse_stream(wire.as_bytes(), &[64], max_body) {
            Err(e) => e,
            Ok(r) => return Err(TestCaseError(format!("accepted oversized body: {r:?}"))),
        };
        prop_assert_eq!(err.status(), 413);
        prop_assert!(matches!(err, HttpError::BodyTooLarge { .. }));
    }
}
