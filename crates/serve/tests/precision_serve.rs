//! Per-request precision over the wire: `?prec=` selection, the
//! `/stats` knob + per-precision counters (DESIGN §13), accuracy of
//! the reduced-precision paths against the f32 serving baseline, and
//! hot-swapping an int8-quantized (v2) checkpoint.

use peb_guard::{OptKind, TrainCheckpoint};
use peb_nn::Parameterized;
use peb_serve::{Client, ServeConfig, Server};
use peb_simd::Prec;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, QuantBudgets, SdmPeb, SdmPebConfig};

const GRID: (usize, usize, usize) = (4, 16, 16);

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        grid: GRID,
        max_batch: 4,
        max_wait_us: 200,
        queue_cap: 32,
        conn_workers: 2,
        ..ServeConfig::default()
    }
}

fn test_clip() -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| (i as f32 * 0.013).sin() * 0.4 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    a.data()
        .iter()
        .zip(b.data())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[test]
fn explicit_f32_matches_default_bitwise_and_reduced_precisions_track_it() {
    let server = Server::start(config()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let clip = test_clip();

    let base = client.infer(&clip).expect("default infer");
    let f32_explicit = client.infer_prec(&clip, Prec::F32).expect("f32 infer");
    assert_eq!(
        base.bit_digest(),
        f32_explicit.bit_digest(),
        "?prec=f32 must be bitwise the default path"
    );

    // The reference volume spans roughly [0.1, 0.9]; bf16 keeps ~3
    // significant digits and int8 is dynamically quantized per GEMM,
    // so both must land close to the f32 prediction without matching
    // it bitwise in general.
    let bf16 = client.infer_prec(&clip, Prec::Bf16).expect("bf16 infer");
    let int8 = client.infer_prec(&clip, Prec::Int8).expect("int8 infer");
    assert_eq!(bf16.shape(), base.shape());
    assert_eq!(int8.shape(), base.shape());
    let scale = base
        .data()
        .iter()
        .fold(0.0f32, |m, v| m.max(v.abs()))
        .max(1e-6);
    assert!(
        max_abs_diff(&bf16, &base) < 0.05 * scale,
        "bf16 drifted {} on scale {scale}",
        max_abs_diff(&bf16, &base)
    );
    assert!(
        max_abs_diff(&int8, &base) < 0.10 * scale,
        "int8 drifted {} on scale {scale}",
        max_abs_diff(&int8, &base)
    );

    // Repeating a reduced-precision request is deterministic.
    let bf16_again = client.infer_prec(&clip, Prec::Bf16).expect("bf16 again");
    assert_eq!(bf16.bit_digest(), bf16_again.bit_digest());

    // /stats reports the batching knobs, the default precision, and
    // the per-precision inference counters.
    let stats = client.request("GET", "/stats", b"").expect("stats");
    assert_eq!(stats.status, 200);
    let j = String::from_utf8_lossy(&stats.body).to_string();
    assert!(j.contains("\"max_batch\":4"), "{j}");
    assert!(j.contains("\"max_wait_us\":200"), "{j}");
    assert!(j.contains("\"queue_cap\":32"), "{j}");
    assert!(j.contains("\"precision\":\"f32\""), "{j}");
    assert!(
        j.contains("\"prec_infers\":{\"f32\":2,\"bf16\":2,\"int8\":1}"),
        "{j}"
    );

    server.shutdown();
}

#[test]
fn unknown_precision_is_a_400_and_the_connection_survives() {
    let server = Server::start(config()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let clip = test_clip();

    let r = client
        .request(
            "POST",
            "/infer?prec=f16",
            &peb_serve::clip::encode_clip(&clip),
        )
        .expect("request completes");
    assert_eq!(r.status, 400, "invalid precision must be a 400");
    let body = String::from_utf8_lossy(&r.body);
    assert!(body.contains("unknown precision"), "{body}");
    // The app-level 400 keeps the connection usable.
    client.infer(&clip).expect("infer after 400");
    server.shutdown();
}

#[test]
fn default_precision_config_applies_to_plain_infer() {
    let server = Server::start(ServeConfig {
        default_prec: Prec::Bf16,
        ..config()
    })
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let clip = test_clip();

    let default_run = client.infer(&clip).expect("default infer");
    let bf16 = client.infer_prec(&clip, Prec::Bf16).expect("bf16 infer");
    assert_eq!(
        default_run.bit_digest(),
        bf16.bit_digest(),
        "with default_prec=bf16 the plain path must be the bf16 path"
    );
    server.shutdown();
}

#[test]
fn quantized_v2_checkpoint_swaps_in_and_serves() {
    // Train-side artifact: a differently-seeded model, checkpointed,
    // then post-training-quantized against a small held-out clip set.
    let donor = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(999));
    let params: Vec<Tensor> = donor.parameters().iter().map(|p| p.value_clone()).collect();
    let n = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 7,
        seed: 999,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n],
        opt_v: vec![None; n],
        quant: None,
    };
    let clips = vec![test_clip()];
    let budgets = QuantBudgets {
        max_rmse: 0.2,
        min_ssim: 0.5,
    };
    let (qckpt, report) =
        sdm_peb::quantize_checkpoint(&donor, &ckpt, &clips, budgets).expect("quantize");
    assert!(report.quant_bytes < report.f32_bytes, "{report:?}");
    let path =
        std::env::temp_dir().join(format!("peb_serve_prec_quant_{}.ckpt", std::process::id()));
    qckpt.save(&path).expect("save quantized checkpoint");

    // Serving side: the swap dequantizes transparently; the served
    // prediction must match a local model restored from the same
    // dequantized parameters bitwise.
    let server = Server::start(config()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let v = client.swap(path.to_str().expect("utf8")).expect("swap");
    assert_eq!(v.version, 1);
    assert_eq!(v.epoch, 7);
    let served = client.infer(&test_clip()).expect("infer");
    server.shutdown();

    let local = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(1));
    let loaded = TrainCheckpoint::load(&path).expect("reload");
    let deq = sdm_peb::checkpoint_params(&loaded).expect("dequantize");
    sdm_peb::restore_parameters(&local, &deq).expect("restore");
    assert_eq!(
        served.bit_digest(),
        local.predict(&test_clip()).bit_digest(),
        "served prediction must come from the dequantized weights"
    );
    let _ = std::fs::remove_file(&path);
}
