//! Hot-swap under fault: a corrupt checkpoint must be rejected with a
//! typed error while the previous model keeps serving; an armed client
//! disconnect must not take the server down; in-flight requests must
//! complete across a swap.
//!
//! The chaos latch is process-global one-shot state, so every test in
//! this binary serialises on one mutex (same pattern as peb-guard's own
//! chaos tests).

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier, Mutex};

use peb_guard::chaos::{self, Chaos};
use peb_guard::{OptKind, TrainCheckpoint};
use peb_nn::Parameterized;
use peb_serve::{Client, ClientError, ServeConfig, Server};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

const GRID: (usize, usize, usize) = (4, 16, 16);

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn config() -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        grid: GRID,
        max_batch: 4,
        max_wait_us: 200,
        queue_cap: 32,
        conn_workers: 2,
        ..ServeConfig::default()
    }
}

fn test_clip() -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| (i as f32 * 0.01).cos() * 0.3 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

/// Saves a checkpoint whose weights come from a differently-seeded
/// model (so a successful swap visibly changes predictions), and
/// returns the path plus the prediction digest that model produces.
fn write_swap_checkpoint(tag: &str) -> (PathBuf, u64) {
    let model = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(999));
    let params: Vec<Tensor> = model.parameters().iter().map(|p| p.value_clone()).collect();
    let n = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 5,
        seed: 999,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n],
        opt_v: vec![None; n],
        quant: None,
    };
    let path =
        std::env::temp_dir().join(format!("peb_serve_chaos_{tag}_{}.ckpt", std::process::id()));
    ckpt.save(&path).expect("save checkpoint");
    (path, model.predict(&test_clip()).bit_digest())
}

#[test]
fn valid_swap_changes_the_served_model() {
    let _l = lock();
    chaos::disarm();
    let (path, swapped_digest) = write_swap_checkpoint("valid");
    let server = Server::start(config()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    let base = client.infer(&test_clip()).expect("infer").bit_digest();
    assert_ne!(base, swapped_digest, "seeds 42 and 999 must differ");

    let v = client
        .swap(path.to_str().expect("utf8 path"))
        .expect("swap succeeds");
    assert_eq!(v.version, 1);
    assert_eq!(v.epoch, 5);

    let after = client.infer(&test_clip()).expect("infer").bit_digest();
    assert_eq!(
        after, swapped_digest,
        "post-swap prediction must match the checkpointed weights bitwise"
    );
    assert_eq!(server.handle().stats().hotswaps.load(Ordering::Relaxed), 1);
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_swap_is_rejected_and_old_model_keeps_serving() {
    let _l = lock();
    for fault in [
        Chaos::BitflipCkpt { byte: None },
        Chaos::TruncateCkpt { bytes: 16 },
    ] {
        chaos::disarm();
        let tag = match fault {
            Chaos::BitflipCkpt { .. } => "bitflip",
            _ => "truncate",
        };
        let (path, _) = write_swap_checkpoint(tag);
        let server = Server::start(config()).expect("start");
        let mut client = Client::connect(server.addr()).expect("connect");
        let base = client.infer(&test_clip()).expect("infer").bit_digest();

        chaos::arm(fault);
        let err = client
            .swap(path.to_str().expect("utf8 path"))
            .expect_err("corrupt checkpoint must be rejected");
        match err {
            ClientError::Status(409, body) => {
                assert!(
                    body.contains("hot-swap rejected"),
                    "typed rejection body, got {body:?}"
                );
            }
            other => panic!("expected 409, got {other:?}"),
        }

        // The previous version keeps serving, bit-for-bit.
        let after = client.infer(&test_clip()).expect("infer").bit_digest();
        assert_eq!(after, base, "{tag}: old model must keep serving unchanged");
        let stats = server.handle().stats();
        assert_eq!(stats.hotswaps.load(Ordering::Relaxed), 0);
        assert_eq!(stats.swaps_rejected.load(Ordering::Relaxed), 1);
        assert_eq!(stats.version().version, 0, "version must not advance");

        // A later clean swap from a fresh file still works (the fault
        // was one-shot).
        let (path2, swapped) = write_swap_checkpoint("recover");
        let v = client
            .swap(path2.to_str().expect("utf8"))
            .expect("clean swap");
        assert_eq!(v.version, 1);
        assert_eq!(
            client.infer(&test_clip()).expect("infer").bit_digest(),
            swapped
        );

        server.shutdown();
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(&path2).ok();
    }
    chaos::disarm();
}

#[test]
fn client_disconnect_mid_response_leaves_server_healthy() {
    let _l = lock();
    chaos::disarm();
    let server = Server::start(config()).expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");
    let base = client.infer(&test_clip()).expect("infer").bit_digest();

    chaos::arm(Chaos::Disconnect);
    let err = client
        .infer(&test_clip())
        .expect_err("dropped mid-response");
    assert!(
        matches!(err, ClientError::Io(_) | ClientError::BadResponse(_)),
        "expected a transport failure, got {err:?}"
    );

    // The server survives: a fresh connection serves the same bits.
    let mut client2 = Client::connect(server.addr()).expect("reconnect");
    let after = client2.infer(&test_clip()).expect("infer").bit_digest();
    assert_eq!(after, base);
    server.shutdown();
    chaos::disarm();
}

#[test]
fn inflight_requests_complete_across_a_swap() {
    let _l = lock();
    chaos::disarm();
    let (path, swapped_digest) = write_swap_checkpoint("inflight");
    let server = Server::start(config()).expect("start");
    let addr = server.addr();

    let mut probe = Client::connect(addr).expect("connect");
    let base_digest = probe.infer(&test_clip()).expect("infer").bit_digest();

    // Four clients stream inferences while the swap lands in the
    // middle; every request must complete with bits from exactly one
    // of the two model versions — never an error, never a mix.
    const CLIENTS: usize = 4;
    const REQS: usize = 6;
    let barrier = Arc::new(Barrier::new(CLIENTS + 1));
    let workers: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                barrier.wait();
                (0..REQS)
                    .map(|_| c.infer(&test_clip()).expect("in-flight infer").bit_digest())
                    .collect::<Vec<u64>>()
            })
        })
        .collect();
    barrier.wait();
    let v = probe.swap(path.to_str().expect("utf8")).expect("swap");
    assert_eq!(v.version, 1);

    let mut saw_new = false;
    for w in workers {
        for d in w.join().expect("client thread") {
            assert!(
                d == base_digest || d == swapped_digest,
                "in-flight request returned bits from neither model version"
            );
            saw_new |= d == swapped_digest;
        }
    }
    // The swap happened mid-stream, so at least the probe confirms the
    // new model serves afterwards.
    let after = probe.infer(&test_clip()).expect("infer").bit_digest();
    assert_eq!(after, swapped_digest);
    // Not all runs interleave a post-swap request into the workers on a
    // single-core box; the probe assertion above is the hard guarantee.
    let _ = saw_new;

    server.shutdown();
    std::fs::remove_file(&path).ok();
}
