//! Batching invariance: a batch of N clips must be bitwise identical
//! to N sequential batch-1 inferences — at 1 and 4 kernel threads, on
//! the scalar and (where available) AVX2 paths.
//!
//! This is the contract `peb-serve`'s dynamic batcher rests on: the
//! batch a request happens to land in (a function of arrival timing)
//! must never change a single output bit, or serving results would be
//! load-dependent and irreproducible.

use std::net::SocketAddr;
use std::sync::{Arc, Barrier};

use peb_serve::{Client, ServeConfig, Server};
use peb_tensor::Tensor;

/// Deterministic clip set with mixed sizes (some smaller than the
/// model grid, exercising the pad/crop path).
fn make_clips() -> Vec<Tensor> {
    let dims = [
        (4usize, 16usize, 16usize),
        (2, 8, 8),
        (3, 12, 16),
        (4, 16, 16),
        (1, 16, 9),
        (4, 5, 6),
    ];
    dims.iter()
        .enumerate()
        .map(|(k, &(d, h, w))| {
            let data = (0..d * h * w)
                .map(|i| ((i as f32) * 0.013 + k as f32 * 0.7).sin() * 0.4 + 0.5)
                .collect();
            Tensor::from_vec(data, &[d, h, w]).expect("clip tensor")
        })
        .collect()
}

fn config(threads: usize, batched: bool, n: usize) -> ServeConfig {
    ServeConfig {
        addr: "127.0.0.1:0".into(),
        grid: (4, 16, 16),
        max_batch: if batched { n } else { 1 },
        // Batched mode waits long enough that barrier-released clients
        // coalesce; sequential mode never waits.
        max_wait_us: if batched { 500_000 } else { 0 },
        queue_cap: 64,
        conn_workers: 2,
        compute_threads: Some(threads),
        ..ServeConfig::default()
    }
}

/// Runs all clips through a server sequentially over one connection.
fn digests_sequential(threads: usize, clips: &[Tensor]) -> Vec<u64> {
    let server = Server::start(config(threads, false, clips.len())).expect("start server");
    let mut client = Client::connect(server.addr()).expect("connect");
    let out = clips
        .iter()
        .map(|c| client.infer(c).expect("infer").bit_digest())
        .collect();
    server.shutdown();
    out
}

/// Runs all clips concurrently (barrier-released) so they coalesce
/// into one engine batch; returns digests in clip order plus the
/// number of multi-clip batches the server saw.
fn digests_batched(threads: usize, clips: &[Tensor]) -> (Vec<u64>, u64) {
    let server = Server::start(config(threads, true, clips.len())).expect("start server");
    let addr: SocketAddr = server.addr();
    let barrier = Arc::new(Barrier::new(clips.len()));
    let workers: Vec<_> = clips
        .iter()
        .cloned()
        .map(|clip| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                barrier.wait();
                client.infer(&clip).expect("infer").bit_digest()
            })
        })
        .collect();
    let digests = workers
        .into_iter()
        .map(|w| w.join().expect("client thread"))
        .collect();
    let multi = server
        .handle()
        .stats()
        .batch_hist_entries()
        .iter()
        .filter(|(size, _)| *size > 1)
        .map(|(_, count)| count)
        .sum();
    server.shutdown();
    (digests, multi)
}

#[test]
fn batching_is_bitwise_invariant_across_threads_and_levels() {
    let clips = make_clips();
    let mut levels = vec![peb_simd::Level::Scalar];
    if peb_simd::detected() {
        levels.push(peb_simd::Level::Avx2Fma);
    }
    for level in levels {
        peb_simd::set_level(level);
        let baseline = digests_sequential(1, &clips);
        for threads in [1usize, 4] {
            let seq = digests_sequential(threads, &clips);
            assert_eq!(
                seq,
                baseline,
                "sequential serving diverged at {threads} threads ({})",
                level.name()
            );
            let (bat, multi_batches) = digests_batched(threads, &clips);
            assert_eq!(
                bat,
                baseline,
                "batched serving diverged at {threads} threads ({})",
                level.name()
            );
            assert!(
                multi_batches >= 1,
                "expected at least one multi-clip batch at {threads} threads ({}) — \
                 the batcher never coalesced, so batching was not actually exercised",
                level.name()
            );
        }
    }
    peb_simd::set_level(peb_simd::best_level());
}
