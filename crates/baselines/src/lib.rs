//! The learning-based PEB baselines of the paper's Table II.
//!
//! Four comparison models, all implementing [`sdm_peb::PebPredictor`] so
//! the shared trainer and benchmark harness treat them uniformly:
//!
//! * [`DeepCnn`] — residual CNN after Watanabe et al. \[41\], "customized
//!   … with a residual connection": 2-D convolutions over the clip with
//!   depth levels as channels (the original is a 2-D lithography CNN).
//! * [`TempoResist`] — TEMPO \[5\] "modified … to suit our 3D PEB
//!   simulation": a per-depth-slice 2-D encoder–decoder generator
//!   conditioned on the depth index. Its D separate forward passes make
//!   it the slowest learned model, as in the paper.
//! * [`Fno`] — the 3-D Fourier Neural Operator \[19\]: spectral
//!   convolutions with truncated modes plus pointwise bypasses.
//! * [`DeePeb`] — DeePEB \[15\]: an FNO global branch for low-frequency
//!   information plus a CNN local branch for high-frequency detail.

mod deepcnn;
mod deepeb;
mod fno;
mod tempo;

pub use deepcnn::{DeepCnn, DeepCnnConfig};
pub use deepeb::{DeePeb, DeePebConfig};
pub use fno::{Fno, FnoConfig, SpectralConv3d};
pub use tempo::{TempoDiscriminator, TempoResist, TempoResistConfig};
