//! TEMPO-resist baseline (modified from TEMPO [5]).
//!
//! TEMPO predicts 3-D aerial images one height at a time with a 2-D
//! conditional generator. The paper adapts it to PEB; we keep the defining
//! property — slice-wise 2-D prediction conditioned on the depth index —
//! using a strided encoder–decoder generator with shared weights across
//! depth levels. The original's adversarial discriminator is replaced by
//! the regression loss used for all methods (documented substitution in
//! DESIGN.md): CD accuracy in Table II comes from the generator, and the
//! characteristic D-pass runtime is preserved.

use rand::Rng;

use peb_nn::{Conv2d, ConvTranspose2d, Parameterized};
use peb_tensor::{Tensor, Var};

use sdm_peb::PebPredictor;

/// TEMPO-resist hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TempoResistConfig {
    /// Input volume `(D, H, W)`.
    pub input_dims: (usize, usize, usize),
    /// Generator base width.
    pub width: usize,
}

impl TempoResistConfig {
    /// Experiment-scale defaults.
    pub fn for_grid(input_dims: (usize, usize, usize)) -> Self {
        TempoResistConfig {
            input_dims,
            width: 40,
        }
    }
}

/// Slice-wise conditional generator.
pub struct TempoResist {
    enc1: Conv2d,
    enc2: Conv2d,
    mid: Conv2d,
    dec1: ConvTranspose2d,
    dec2: ConvTranspose2d,
    head: Conv2d,
    config: TempoResistConfig,
}

impl TempoResist {
    /// Builds the generator. Input per slice: the acid plane plus a
    /// constant depth-encoding channel (normalised depth), so one set of
    /// weights serves every height, exactly as TEMPO conditions on height.
    pub fn new(config: TempoResistConfig, rng: &mut impl Rng) -> Self {
        let w = config.width;
        TempoResist {
            enc1: Conv2d::new(2, w, 3, 2, 1, true, rng),
            enc2: Conv2d::new(w, w * 2, 3, 2, 1, true, rng),
            mid: Conv2d::new(w * 2, w * 2, 3, 1, 1, true, rng),
            dec1: ConvTranspose2d::new(w * 2, w, 4, 2, 1, rng),
            dec2: ConvTranspose2d::new(w, w, 4, 2, 1, rng),
            head: Conv2d::new(w, 1, 3, 1, 1, true, rng),
            config,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TempoResistConfig {
        &self.config
    }

    fn generate_slice(&self, plane: &Var) -> Var {
        let e1 = self.enc1.forward(plane).leaky_relu(0.2);
        let e2 = self.enc2.forward(&e1).leaky_relu(0.2);
        let m = self.mid.forward(&e2).leaky_relu(0.2);
        let d1 = self.dec1.forward(&m).leaky_relu(0.2);
        let d2 = self.dec2.forward(&d1).leaky_relu(0.2);
        self.head.forward(&d2)
    }
}

impl Parameterized for TempoResist {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.enc1.parameters();
        p.extend(self.enc2.parameters());
        p.extend(self.mid.parameters());
        p.extend(self.dec1.parameters());
        p.extend(self.dec2.parameters());
        p.extend(self.head.parameters());
        p
    }
}

impl PebPredictor for TempoResist {
    fn name(&self) -> &'static str {
        "TEMPO-resist"
    }

    fn forward_train(&self, acid: &Tensor) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "TEMPO input dims mismatch");
        let mut slices = Vec::with_capacity(d);
        for k in 0..d {
            // Condition channel: normalised depth of this slice.
            let depth_code = if d > 1 {
                k as f32 / (d - 1) as f32
            } else {
                0.0
            };
            let mut plane = Tensor::zeros(&[2, h, w]);
            {
                let (src, dst) = (acid.data(), plane.data_mut());
                dst[..h * w].copy_from_slice(&src[k * h * w..(k + 1) * h * w]);
                for v in &mut dst[h * w..] {
                    *v = depth_code;
                }
            }
            let out = self.generate_slice(&Var::constant(plane)); // [1, H, W]
            slices.push(out);
        }
        let refs: Vec<&Var> = slices.iter().collect();
        Var::concat(&refs, 0) // [D, H, W]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(130);
        let model = TempoResist::new(
            TempoResistConfig {
                input_dims: (3, 16, 16),
                width: 8,
            },
            &mut rng,
        );
        let acid = Tensor::rand_uniform(&[3, 16, 16], 0.0, 0.9, &mut rng);
        assert_eq!(model.predict(&acid).shape(), &[3, 16, 16]);
    }

    #[test]
    fn depth_conditioning_differentiates_identical_slices() {
        let mut rng = StdRng::seed_from_u64(131);
        let model = TempoResist::new(
            TempoResistConfig {
                input_dims: (2, 8, 8),
                width: 6,
            },
            &mut rng,
        );
        // Same acid content at both depths; only the condition channel
        // differs, so the outputs must differ.
        let mut acid = Tensor::zeros(&[2, 8, 8]);
        for y in 0..8 {
            for x in 0..8 {
                let v = ((y * x) % 4) as f32 * 0.2;
                acid.set(&[0, y, x], v);
                acid.set(&[1, y, x], v);
            }
        }
        let out = model.predict(&acid);
        let s0 = out.slice_axis(0, 0, 1).unwrap();
        let s1 = out.slice_axis(0, 1, 2).unwrap();
        assert!(s0.max_abs_diff(&s1) > 1e-6);
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(132);
        let model = TempoResist::new(
            TempoResistConfig {
                input_dims: (2, 8, 8),
                width: 6,
            },
            &mut rng,
        );
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        model.forward_train(&acid).square().sum().backward();
        assert!(model.parameters().iter().all(|p| p.grad().is_some()));
    }
}

// ---------------------------------------------------------------------------
// Adversarial extension: the cGAN discriminator of the original TEMPO
// ---------------------------------------------------------------------------

/// A PatchGAN-style conditional discriminator over (acid slice, inhibitor
/// slice) pairs.
///
/// The original TEMPO \[5\] trains its generator adversarially; the Table II
/// protocol here trains all models with the shared regression loss, but
/// this discriminator (with the LSGAN objective of
/// [`TempoResist::adversarial_step`]) restores the full cGAN formulation
/// for users who want it.
pub struct TempoDiscriminator {
    d1: Conv2d,
    d2: Conv2d,
    d3: Conv2d,
}

impl TempoDiscriminator {
    /// Builds a three-layer patch discriminator (receptive field ≈ 16 px).
    pub fn new(width: usize, rng: &mut impl Rng) -> Self {
        TempoDiscriminator {
            d1: Conv2d::new(2, width, 4, 2, 1, true, rng),
            d2: Conv2d::new(width, width * 2, 4, 2, 1, true, rng),
            d3: Conv2d::new(width * 2, 1, 3, 1, 1, true, rng),
        }
    }

    /// Patch realness scores for a conditioned pair of `[H, W]` planes.
    ///
    /// # Panics
    ///
    /// Panics if the planes' shapes differ.
    pub fn forward(&self, acid_plane: &Tensor, label_plane: &Tensor) -> Var {
        assert_eq!(acid_plane.shape(), label_plane.shape(), "plane mismatch");
        let (h, w) = (acid_plane.shape()[0], acid_plane.shape()[1]);
        let mut stacked = Tensor::zeros(&[2, h, w]);
        stacked.data_mut()[..h * w].copy_from_slice(acid_plane.data());
        stacked.data_mut()[h * w..].copy_from_slice(label_plane.data());
        let x = Var::constant(stacked);
        let f = self.d1.forward(&x).leaky_relu(0.2);
        let f = self.d2.forward(&f).leaky_relu(0.2);
        self.d3.forward(&f)
    }

    /// Patch scores with gradients flowing into a *generated* label plane
    /// (for the generator's adversarial term).
    pub fn forward_generated(&self, acid_plane: &Tensor, label_plane: &Var) -> Var {
        let (h, w) = (acid_plane.shape()[0], acid_plane.shape()[1]);
        let acid = Var::constant(acid_plane.reshape(&[1, h, w]).expect("acid plane reshape"));
        let lab = label_plane.reshape(&[1, h, w]);
        let x = Var::concat(&[&acid, &lab], 0);
        let f = self.d1.forward(&x).leaky_relu(0.2);
        let f = self.d2.forward(&f).leaky_relu(0.2);
        self.d3.forward(&f)
    }
}

impl Parameterized for TempoDiscriminator {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.d1.parameters();
        p.extend(self.d2.parameters());
        p.extend(self.d3.parameters());
        p
    }
}

impl TempoResist {
    /// One LSGAN step on a single depth slice: returns
    /// `(d_loss, g_adv_loss)` graphs ready for `backward()`.
    ///
    /// LSGAN targets: real → 1, fake → 0 for the discriminator;
    /// fake → 1 for the generator term. Callers combine `g_adv` with the
    /// regression loss and step the two parameter sets separately.
    pub fn adversarial_step(
        &self,
        disc: &TempoDiscriminator,
        acid: &Tensor,
        label: &Tensor,
        slice: usize,
    ) -> (Var, Var) {
        let (d, h, w) = self.config.input_dims;
        assert!(slice < d, "slice out of range");
        let plane_of = |t: &Tensor| {
            Tensor::from_vec(
                t.data()[slice * h * w..(slice + 1) * h * w].to_vec(),
                &[h, w],
            )
            .expect("slice plane")
        };
        let acid_plane = plane_of(acid);
        let label_plane = plane_of(label);
        // Generator output for this slice (with gradients).
        let fake_volume = self.forward_train(acid);
        let fake_plane = fake_volume.slice_axis(0, slice, slice + 1).reshape(&[h, w]);
        // Discriminator loss: (D(real) − 1)² + D(fake_detached)².
        let real_score = disc.forward(&acid_plane, &label_plane);
        let fake_score_d = disc.forward(&acid_plane, &fake_plane.value_clone());
        let d_loss = real_score
            .add_scalar(-1.0)
            .square()
            .mean()
            .add(&fake_score_d.square().mean());
        // Generator adversarial term: (D(fake) − 1)².
        let fake_score_g = disc.forward_generated(&acid_plane, &fake_plane);
        let g_adv = fake_score_g.add_scalar(-1.0).square().mean();
        (d_loss, g_adv)
    }
}

#[cfg(test)]
mod gan_tests {
    use super::*;
    use peb_nn::{Adam, Optimizer};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (TempoResist, TempoDiscriminator, Tensor, Tensor) {
        let mut rng = StdRng::seed_from_u64(140);
        let gen = TempoResist::new(
            TempoResistConfig {
                input_dims: (2, 8, 8),
                width: 6,
            },
            &mut rng,
        );
        let disc = TempoDiscriminator::new(6, &mut rng);
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        let label = acid.map(|a| 1.0 - a);
        (gen, disc, acid, label)
    }

    #[test]
    fn discriminator_scores_have_patch_shape() {
        let (_, disc, acid, label) = setup();
        let plane = Tensor::from_vec(acid.data()[..64].to_vec(), &[8, 8]).unwrap();
        let lplane = Tensor::from_vec(label.data()[..64].to_vec(), &[8, 8]).unwrap();
        let score = disc.forward(&plane, &lplane);
        assert_eq!(score.shape(), vec![1, 2, 2]);
    }

    #[test]
    fn adversarial_losses_are_finite_and_backprop() {
        let (gen, disc, acid, label) = setup();
        let (d_loss, g_adv) = gen.adversarial_step(&disc, &acid, &label, 1);
        assert!(d_loss.value().item().is_finite());
        assert!(g_adv.value().item().is_finite());
        d_loss.backward();
        assert!(disc.parameters().iter().all(|p| p.grad().is_some()));
        g_adv.backward();
        assert!(gen.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn discriminator_learns_to_separate_real_from_fake() {
        let (gen, disc, acid, label) = setup();
        let d_params = disc.parameters();
        let mut opt = Adam::new(5e-3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..12 {
            opt.zero_grad(&d_params);
            let (d_loss, _) = gen.adversarial_step(&disc, &acid, &label, 0);
            last = d_loss.value().item();
            first.get_or_insert(last);
            d_loss.backward();
            opt.step(&d_params);
        }
        assert!(
            last < first.unwrap(),
            "discriminator loss should fall: {first:?} -> {last}"
        );
    }
}
