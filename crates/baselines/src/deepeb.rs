//! DeePEB baseline (Wang et al., ICCAD 2022 [15]).
//!
//! DeePEB extends FNO with a CNN-based local branch: the spectral branch
//! captures low-frequency global behaviour while parallel convolutions
//! recover the high-frequency local detail the mode truncation discards.

use rand::Rng;

use peb_nn::{Conv3d, Linear, Parameterized};
use peb_tensor::{Tensor, Var};

use sdm_peb::PebPredictor;

use crate::fno::{pointwise, SpectralConv3d};

/// DeePEB hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeePebConfig {
    /// Input volume `(D, H, W)`.
    pub input_dims: (usize, usize, usize),
    /// Lifted channel width.
    pub width: usize,
    /// Retained spectral modes per axis.
    pub modes: (usize, usize, usize),
    /// Number of combined global+local blocks.
    pub layers: usize,
}

impl DeePebConfig {
    /// Experiment-scale defaults.
    pub fn for_grid(input_dims: (usize, usize, usize)) -> Self {
        DeePebConfig {
            input_dims,
            width: 8,
            modes: (3, 6, 6),
            layers: 2,
        }
    }
}

struct Block {
    spectral: SpectralConv3d,
    local: Conv3d,
    bypass: Linear,
}

/// FNO global branch + CNN local branch.
pub struct DeePeb {
    lift: Linear,
    blocks: Vec<Block>,
    project: Linear,
    config: DeePebConfig,
}

impl DeePeb {
    /// Builds the network.
    pub fn new(config: DeePebConfig, rng: &mut impl Rng) -> Self {
        let w = config.width;
        let blocks = (0..config.layers)
            .map(|_| Block {
                spectral: SpectralConv3d::new(w, w, config.input_dims, config.modes, rng),
                local: Conv3d::same(w, w, 3, rng),
                bypass: Linear::new(w, w, true, rng),
            })
            .collect();
        DeePeb {
            lift: Linear::new(1, w, true, rng),
            blocks,
            project: Linear::new(w, 1, true, rng),
            config,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DeePebConfig {
        &self.config
    }
}

impl Parameterized for DeePeb {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.lift.parameters();
        for b in &self.blocks {
            p.extend(b.spectral.parameters());
            p.extend(b.local.parameters());
            p.extend(b.bypass.parameters());
        }
        p.extend(self.project.parameters());
        p
    }
}

impl PebPredictor for DeePeb {
    fn name(&self) -> &'static str {
        "DeePEB"
    }

    fn forward_train(&self, acid: &Tensor) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "DeePEB input dims mismatch");
        let x = Var::constant(acid.reshape(&[1, d, h, w]).expect("lift reshape"));
        let mut f = pointwise(&x, &self.lift);
        for block in &self.blocks {
            let global = block.spectral.forward(&f);
            let local = block.local.forward(&f);
            let skip = pointwise(&f, &block.bypass);
            f = global.add(&local).add(&skip).gelu();
        }
        pointwise(&f, &self.project).reshape(&[d, h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> DeePebConfig {
        DeePebConfig {
            input_dims: (2, 8, 8),
            width: 4,
            modes: (1, 2, 2),
            layers: 1,
        }
    }

    #[test]
    fn forward_shape_and_gradients() {
        let mut rng = StdRng::seed_from_u64(150);
        let model = DeePeb::new(tiny(), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        let y = model.predict(&acid);
        assert_eq!(y.shape(), &[2, 8, 8]);
        model.forward_train(&acid).square().sum().backward();
        assert!(model.parameters().iter().all(|p| p.grad().is_some()));
    }

    #[test]
    fn local_branch_adds_high_frequency_capacity() {
        // DeePEB with the same width/modes has strictly more parameters
        // than a pure FNO block set (the local conv + bypass).
        use crate::fno::{Fno, FnoConfig};
        let mut rng = StdRng::seed_from_u64(151);
        let deepeb = DeePeb::new(tiny(), &mut rng);
        let fno = Fno::new(
            FnoConfig {
                input_dims: (2, 8, 8),
                width: 4,
                modes: (1, 2, 2),
                layers: 1,
            },
            &mut rng,
        );
        assert!(deepeb.parameter_count() > fno.parameter_count());
    }

    #[test]
    fn training_reduces_loss() {
        use peb_nn::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(152);
        let model = DeePeb::new(tiny(), &mut rng);
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        let target = acid.map(|a| 1.2 * a + 0.1);
        let params = model.parameters();
        let mut opt = Adam::new(5e-3);
        let loss = |m: &DeePeb| {
            m.forward_train(&acid)
                .sub(&Var::constant(target.clone()))
                .square()
                .mean()
                .value()
                .item()
        };
        let before = loss(&model);
        for _ in 0..10 {
            opt.zero_grad(&params);
            model
                .forward_train(&acid)
                .sub(&Var::constant(target.clone()))
                .square()
                .mean()
                .backward();
            opt.step(&params);
        }
        assert!(loss(&model) < before * 0.8);
    }
}
