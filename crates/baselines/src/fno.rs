//! 3-D Fourier Neural Operator baseline (Li et al. [19]).
//!
//! Each FNO block applies a learned filter to the lowest ±`m` Fourier
//! modes of the feature volume (channel-mixing complex weights), adds a
//! pointwise linear bypass, and applies GELU. The spectral convolution is
//! a custom autograd operation; its adjoint is derived from the identity
//! `y = Re(F⁻¹ W F x)` ⇒ `dx = Re(F Wᵀ F⁻¹ dy)` for the unscaled-forward
//! / `1/N`-scaled-inverse DFT convention used by `peb-fft` (the DFT
//! matrix is symmetric, so transposes — not conjugate transposes —
//! appear).

use rand::Rng;

use peb_fft::{fft3d, ifft3d, Complex, ComplexField};
use peb_nn::{kaiming_uniform, Linear, Parameterized};
use peb_tensor::{Tensor, Var};

use sdm_peb::PebPredictor;

/// Indices kept for one axis: frequencies `|k| < m`, i.e. `{0..m−1}` and
/// `{n−m+1..n−1}`.
fn kept_indices(n: usize, m: usize) -> Vec<usize> {
    let m = m.min(n.div_ceil(2));
    let mut idx: Vec<usize> = (0..m).collect();
    for k in n - m + 1..n {
        if k >= m {
            idx.push(k);
        }
    }
    idx
}

/// Spectral convolution over the lowest Fourier modes of `[C, D, H, W]`.
pub struct SpectralConv3d {
    w_re: Var,
    w_im: Var,
    kept_d: Vec<usize>,
    kept_h: Vec<usize>,
    kept_w: Vec<usize>,
    cin: usize,
    cout: usize,
}

impl SpectralConv3d {
    /// Creates a layer keeping `modes = (m_d, m_h, m_w)` frequencies per
    /// axis for a `(D, H, W)` volume.
    pub fn new(
        cin: usize,
        cout: usize,
        dims: (usize, usize, usize),
        modes: (usize, usize, usize),
        rng: &mut impl Rng,
    ) -> Self {
        let kept_d = kept_indices(dims.0, modes.0);
        let kept_h = kept_indices(dims.1, modes.1);
        let kept_w = kept_indices(dims.2, modes.2);
        let shape = [cout, cin, kept_d.len(), kept_h.len(), kept_w.len()];
        // FNO init: scale 1/(cin·cout) keeps early spectra tame.
        let scale = 1.0 / (cin as f32 * cout as f32).sqrt();
        let w_re = Var::parameter(kaiming_uniform(&shape, cin, rng).mul_scalar(scale));
        let w_im = Var::parameter(kaiming_uniform(&shape, cin, rng).mul_scalar(scale));
        SpectralConv3d {
            w_re,
            w_im,
            kept_d,
            kept_h,
            kept_w,
            cin,
            cout,
        }
    }

    /// Number of retained modes `(per-axis counts)`.
    pub fn mode_counts(&self) -> (usize, usize, usize) {
        (self.kept_d.len(), self.kept_h.len(), self.kept_w.len())
    }

    /// Applies the layer to `[Cin, D, H, W]`, producing `[Cout, D, H, W]`.
    ///
    /// # Panics
    ///
    /// Panics on a channel mismatch or non-power-of-two extents.
    pub fn forward(&self, x: &Var) -> Var {
        let s = x.shape();
        assert_eq!(s[0], self.cin, "SpectralConv3d channel mismatch");
        let (d, h, w) = (s[1], s[2], s[3]);
        let vol = [d, h, w];
        // FFT per input channel.
        let xv = x.value();
        let spectra: Vec<ComplexField> = (0..self.cin)
            .map(|c| {
                let t =
                    Tensor::from_vec(xv.data()[c * d * h * w..(c + 1) * d * h * w].to_vec(), &vol)
                        .expect("channel slice");
                fft3d(&ComplexField::from_real(&t)).expect("fft3d")
            })
            .collect();
        let out = self.mix_and_invert(&spectra, vol);
        // Save the input spectra for the backward pass.
        let kept_d = self.kept_d.clone();
        let kept_h = self.kept_h.clone();
        let kept_w = self.kept_w.clone();
        let (cin, cout) = (self.cin, self.cout);
        let w_re_var = self.w_re.clone();
        let w_im_var = self.w_im.clone();
        Var::from_op(
            out,
            vec![x.clone(), self.w_re.clone(), self.w_im.clone()],
            move |g| {
                let (md, mh, mw) = (kept_d.len(), kept_h.len(), kept_w.len());
                // G_o = ifft3(g_o) for each output channel.
                let g_spectra: Vec<ComplexField> = (0..cout)
                    .map(|o| {
                        let t = Tensor::from_vec(
                            g.data()[o * d * h * w..(o + 1) * d * h * w].to_vec(),
                            &vol,
                        )
                        .expect("grad slice");
                        ifft3d(&ComplexField::from_real(&t)).expect("ifft3d")
                    })
                    .collect();
                let wre = w_re_var.value();
                let wim = w_im_var.value();
                let mut dw_re = Tensor::zeros(&[cout, cin, md, mh, mw]);
                let mut dw_im = Tensor::zeros(&[cout, cin, md, mh, mw]);
                // dX accumulated per input channel as a complex field.
                let mut dx_spectra: Vec<ComplexField> =
                    (0..cin).map(|_| ComplexField::zeros(&vol)).collect();
                for (id, &fd) in kept_d.iter().enumerate() {
                    for (ih, &fh) in kept_h.iter().enumerate() {
                        for (iw, &fw) in kept_w.iter().enumerate() {
                            let flat = (fd * h + fh) * w + fw;
                            for (o, g_spec) in g_spectra.iter().enumerate() {
                                let gv = g_spec.data()[flat];
                                for ci in 0..cin {
                                    let widx = (((o * cin + ci) * md + id) * mh + ih) * mw + iw;
                                    let xv = spectra[ci].data()[flat];
                                    // dW = conj(G · X).
                                    let gx = gv * xv;
                                    dw_re.data_mut()[widx] += gx.re;
                                    dw_im.data_mut()[widx] -= gx.im;
                                    // dX += Wᵀ G (no conjugation).
                                    let wv = Complex::new(wre.data()[widx], wim.data()[widx]);
                                    dx_spectra[ci].data_mut()[flat] += wv * gv;
                                }
                            }
                        }
                    }
                }
                // dx_c = Re(fft3(dX_c)).
                let mut dx = Tensor::zeros(&[cin, d, h, w]);
                for (ci, spec) in dx_spectra.iter().enumerate() {
                    let real = fft3d(spec).expect("fft3d backward").real();
                    dx.data_mut()[ci * d * h * w..(ci + 1) * d * h * w]
                        .copy_from_slice(real.data());
                }
                vec![Some(dx), Some(dw_re), Some(dw_im)]
            },
        )
    }

    /// Applies the spectral weights and inverse transform (forward path).
    fn mix_and_invert(&self, spectra: &[ComplexField], vol: [usize; 3]) -> Tensor {
        let (d, h, w) = (vol[0], vol[1], vol[2]);
        let (md, mh, mw) = self.mode_counts();
        let wre = self.w_re.value();
        let wim = self.w_im.value();
        let mut out = Tensor::zeros(&[self.cout, d, h, w]);
        for o in 0..self.cout {
            let mut mixed = ComplexField::zeros(&vol);
            for (id, &fd) in self.kept_d.iter().enumerate() {
                for (ih, &fh) in self.kept_h.iter().enumerate() {
                    for (iw, &fw) in self.kept_w.iter().enumerate() {
                        let flat = (fd * h + fh) * w + fw;
                        let mut acc = Complex::ZERO;
                        for (ci, spec) in spectra.iter().enumerate() {
                            let widx = (((o * self.cin + ci) * md + id) * mh + ih) * mw + iw;
                            let wv = Complex::new(wre.data()[widx], wim.data()[widx]);
                            acc += wv * spec.data()[flat];
                        }
                        mixed.data_mut()[flat] = acc;
                    }
                }
            }
            let real = ifft3d(&mixed).expect("ifft3d").real();
            out.data_mut()[o * d * h * w..(o + 1) * d * h * w].copy_from_slice(real.data());
        }
        out
    }
}

impl Parameterized for SpectralConv3d {
    fn parameters(&self) -> Vec<Var> {
        vec![self.w_re.clone(), self.w_im.clone()]
    }
}

/// FNO hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnoConfig {
    /// Input volume `(D, H, W)`.
    pub input_dims: (usize, usize, usize),
    /// Lifted channel width.
    pub width: usize,
    /// Retained modes per axis.
    pub modes: (usize, usize, usize),
    /// Number of spectral blocks.
    pub layers: usize,
}

impl FnoConfig {
    /// Experiment-scale defaults.
    pub fn for_grid(input_dims: (usize, usize, usize)) -> Self {
        FnoConfig {
            input_dims,
            width: 10,
            modes: (3, 6, 6),
            layers: 3,
        }
    }
}

/// The 3-D Fourier Neural Operator.
pub struct Fno {
    lift: Linear,
    blocks: Vec<(SpectralConv3d, Linear)>,
    project: Linear,
    config: FnoConfig,
}

impl Fno {
    /// Builds the operator.
    pub fn new(config: FnoConfig, rng: &mut impl Rng) -> Self {
        let w = config.width;
        let blocks = (0..config.layers)
            .map(|_| {
                (
                    SpectralConv3d::new(w, w, config.input_dims, config.modes, rng),
                    Linear::new(w, w, true, rng),
                )
            })
            .collect();
        Fno {
            lift: Linear::new(1, w, true, rng),
            blocks,
            project: Linear::new(w, 1, true, rng),
            config,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &FnoConfig {
        &self.config
    }
}

/// Applies a per-voxel linear layer to a `[C, D, H, W]` volume.
pub(crate) fn pointwise(x: &Var, lin: &Linear) -> Var {
    let s = x.shape();
    let (c, l) = (s[0], s[1] * s[2] * s[3]);
    let seq = x.reshape(&[c, l]).permute(&[1, 0]);
    let out = lin.forward(&seq);
    let co = out.shape()[1];
    out.permute(&[1, 0]).reshape(&[co, s[1], s[2], s[3]])
}

impl Parameterized for Fno {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.lift.parameters();
        for (s, l) in &self.blocks {
            p.extend(s.parameters());
            p.extend(l.parameters());
        }
        p.extend(self.project.parameters());
        p
    }
}

impl PebPredictor for Fno {
    fn name(&self) -> &'static str {
        "FNO"
    }

    fn forward_train(&self, acid: &Tensor) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "FNO input dims mismatch");
        let x = Var::constant(acid.reshape(&[1, d, h, w]).expect("lift reshape"));
        let mut f = pointwise(&x, &self.lift);
        for (spectral, bypass) in &self.blocks {
            let s = spectral.forward(&f);
            let b = pointwise(&f, bypass);
            f = s.add(&b).gelu();
        }
        let out = pointwise(&f, &self.project); // [1, D, H, W]
        out.reshape(&[d, h, w])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kept_indices_symmetric() {
        assert_eq!(kept_indices(8, 2), vec![0, 1, 7]);
        assert_eq!(kept_indices(8, 3), vec![0, 1, 2, 6, 7]);
        // Clamped to available frequencies.
        assert_eq!(kept_indices(4, 8), vec![0, 1, 3]);
    }

    #[test]
    fn spectral_conv_shapes() {
        let mut rng = StdRng::seed_from_u64(140);
        let sc = SpectralConv3d::new(2, 3, (4, 8, 8), (2, 2, 2), &mut rng);
        let x = Var::constant(Tensor::randn(&[2, 4, 8, 8], &mut rng));
        let y = sc.forward(&x);
        assert_eq!(y.shape(), vec![3, 4, 8, 8]);
        assert!(y.value().data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn spectral_conv_is_translation_equivariant() {
        // Fourier filters commute with (circular) translation.
        let mut rng = StdRng::seed_from_u64(141);
        let sc = SpectralConv3d::new(1, 1, (2, 8, 8), (1, 3, 3), &mut rng);
        let x = Tensor::randn(&[1, 2, 8, 8], &mut rng);
        let y = sc.forward(&Var::constant(x.clone())).value_clone();
        // Roll x by 2 along W.
        let mut xr = Tensor::zeros(&[1, 2, 8, 8]);
        for dz in 0..2 {
            for yy in 0..8 {
                for xx in 0..8 {
                    xr.set(&[0, dz, yy, (xx + 2) % 8], x.get(&[0, dz, yy, xx]));
                }
            }
        }
        let yr = sc.forward(&Var::constant(xr)).value_clone();
        for dz in 0..2 {
            for yy in 0..8 {
                for xx in 0..8 {
                    let a = y.get(&[0, dz, yy, xx]);
                    let b = yr.get(&[0, dz, yy, (xx + 2) % 8]);
                    assert!((a - b).abs() < 1e-3, "equivariance broken: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn spectral_conv_gradcheck_input() {
        let mut rng = StdRng::seed_from_u64(142);
        let sc = SpectralConv3d::new(1, 1, (2, 4, 4), (1, 2, 2), &mut rng);
        let x0 = Tensor::randn(&[1, 2, 4, 4], &mut rng);
        let r = peb_tensor::check_gradients(
            &Var::parameter(x0),
            |v| sc.forward(v).square().sum(),
            1e-2,
        );
        assert!(r.ok(3e-2), "{r:?}");
    }

    #[test]
    fn spectral_conv_gradcheck_weights() {
        let mut rng = StdRng::seed_from_u64(143);
        let sc = SpectralConv3d::new(1, 1, (2, 4, 4), (1, 2, 2), &mut rng);
        let x = Var::constant(Tensor::randn(&[1, 2, 4, 4], &mut rng));
        for (label, var) in [("w_re", &sc.w_re), ("w_im", &sc.w_im)] {
            let w0 = var.value_clone();
            let numeric = peb_tensor::numeric_gradient(
                &w0,
                |v| {
                    var.set_value(v.value_clone());
                    sc.forward(&x).square().sum()
                },
                1e-2,
            );
            var.set_value(w0);
            var.zero_grad();
            sc.forward(&x).square().sum().backward();
            let analytic = var.grad().unwrap();
            let mut max_rel = 0f32;
            for (a, n) in analytic.data().iter().zip(numeric.data()) {
                max_rel = max_rel.max((a - n).abs() / 1f32.max(a.abs()).max(n.abs()));
            }
            assert!(max_rel < 3e-2, "{label}: rel err {max_rel}");
        }
    }

    #[test]
    fn fno_end_to_end() {
        let mut rng = StdRng::seed_from_u64(144);
        let model = Fno::new(
            FnoConfig {
                input_dims: (2, 8, 8),
                width: 4,
                modes: (1, 2, 2),
                layers: 2,
            },
            &mut rng,
        );
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        let y = model.predict(&acid);
        assert_eq!(y.shape(), &[2, 8, 8]);
        model.forward_train(&acid).square().sum().backward();
        assert!(model.parameters().iter().all(|p| p.grad().is_some()));
    }
}
