//! DeepCNN baseline (Watanabe et al. [41] + residual connection).

use rand::Rng;

use peb_nn::{Conv2d, Parameterized};
use peb_tensor::{Tensor, Var};

use sdm_peb::PebPredictor;

/// DeepCNN hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeepCnnConfig {
    /// Input volume `(D, H, W)`; depth becomes the channel axis.
    pub input_dims: (usize, usize, usize),
    /// Hidden channel width.
    pub width: usize,
    /// Number of residual blocks.
    pub blocks: usize,
}

impl DeepCnnConfig {
    /// Experiment-scale defaults.
    pub fn for_grid(input_dims: (usize, usize, usize)) -> Self {
        DeepCnnConfig {
            input_dims,
            width: 24,
            blocks: 3,
        }
    }
}

/// Residual 2-D CNN over the clip, depth levels as channels.
pub struct DeepCnn {
    stem: Conv2d,
    blocks: Vec<(Conv2d, Conv2d)>,
    head: Conv2d,
    config: DeepCnnConfig,
}

impl DeepCnn {
    /// Builds the network.
    pub fn new(config: DeepCnnConfig, rng: &mut impl Rng) -> Self {
        let d = config.input_dims.0;
        let w = config.width;
        let blocks = (0..config.blocks)
            .map(|_| {
                (
                    Conv2d::new(w, w, 3, 1, 1, true, rng),
                    Conv2d::new(w, w, 3, 1, 1, true, rng),
                )
            })
            .collect();
        DeepCnn {
            stem: Conv2d::new(d, w, 3, 1, 1, true, rng),
            blocks,
            head: Conv2d::new(w, d, 3, 1, 1, true, rng),
            config,
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &DeepCnnConfig {
        &self.config
    }
}

impl Parameterized for DeepCnn {
    fn parameters(&self) -> Vec<Var> {
        let mut p = self.stem.parameters();
        for (a, b) in &self.blocks {
            p.extend(a.parameters());
            p.extend(b.parameters());
        }
        p.extend(self.head.parameters());
        p
    }
}

impl PebPredictor for DeepCnn {
    fn name(&self) -> &'static str {
        "DeepCNN"
    }

    fn forward_train(&self, acid: &Tensor) -> Var {
        let (d, h, w) = self.config.input_dims;
        assert_eq!(acid.shape(), [d, h, w], "DeepCNN input dims mismatch");
        let x = Var::constant(acid.clone()); // [D, H, W] = channels-first 2-D
        let mut f = self.stem.forward(&x).relu();
        for (a, b) in &self.blocks {
            let inner = b.forward(&a.forward(&f).relu());
            f = f.add(&inner).relu(); // residual connection
        }
        self.head.forward(&f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(120);
        let model = DeepCnn::new(
            DeepCnnConfig {
                input_dims: (4, 16, 16),
                width: 8,
                blocks: 2,
            },
            &mut rng,
        );
        let acid = Tensor::rand_uniform(&[4, 16, 16], 0.0, 0.9, &mut rng);
        let y = model.predict(&acid);
        assert_eq!(y.shape(), &[4, 16, 16]);
    }

    #[test]
    fn gradients_flow_and_training_reduces_loss() {
        use peb_nn::{Adam, Optimizer};
        let mut rng = StdRng::seed_from_u64(121);
        let model = DeepCnn::new(
            DeepCnnConfig {
                input_dims: (2, 8, 8),
                width: 6,
                blocks: 1,
            },
            &mut rng,
        );
        let acid = Tensor::rand_uniform(&[2, 8, 8], 0.0, 0.9, &mut rng);
        let target = acid.map(|a| a * 1.7 - 0.3);
        let params = model.parameters();
        let mut opt = Adam::new(1e-2);
        let loss_at = |m: &DeepCnn| {
            let d = m.forward_train(&acid).sub(&Var::constant(target.clone()));
            d.square().mean().value().item()
        };
        let before = loss_at(&model);
        for _ in 0..10 {
            opt.zero_grad(&params);
            model
                .forward_train(&acid)
                .sub(&Var::constant(target.clone()))
                .square()
                .mean()
                .backward();
            opt.step(&params);
        }
        let after = loss_at(&model);
        assert!(after < before * 0.7, "{before} -> {after}");
    }
}
