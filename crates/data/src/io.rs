//! Versioned binary cache for generated datasets.
//!
//! The rigorous solves are the expensive part of every experiment, so
//! datasets are written to disk after first generation. The format is a
//! minimal little-endian binary codec (no external serialisation backend
//! is in the allowed dependency set).

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;
use std::time::Duration;

use peb_litho::{ClipStyle, Contact, ContactCd, Grid, MaskClip};
use peb_tensor::Tensor;

use crate::dataset::{Dataset, Sample};

const MAGIC: &[u8; 8] = b"PEBDATA2";

/// Saves a dataset to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_dataset(ds: &Dataset, path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_grid(&mut w, &ds.grid)?;
    write_u64(&mut w, ds.train.len() as u64)?;
    for s in &ds.train {
        write_sample(&mut w, s)?;
    }
    write_u64(&mut w, ds.test.len() as u64)?;
    for s in &ds.test {
        write_sample(&mut w, s)?;
    }
    w.flush()
}

/// Loads a dataset from `path`.
///
/// # Errors
///
/// Returns an [`io::Error`] with kind `InvalidData` for version or format
/// mismatches, or any underlying I/O error.
pub fn load_dataset(path: &Path) -> io::Result<Dataset> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PEB dataset cache (or wrong version)",
        ));
    }
    let grid = read_grid(&mut r)?;
    let n_train = read_u64(&mut r)? as usize;
    let mut train = Vec::with_capacity(n_train);
    for _ in 0..n_train {
        train.push(read_sample(&mut r)?);
    }
    let n_test = read_u64(&mut r)? as usize;
    let mut test = Vec::with_capacity(n_test);
    for _ in 0..n_test {
        test.push(read_sample(&mut r)?);
    }
    Ok(Dataset { grid, train, test })
}

// --- primitive codecs -----------------------------------------------------

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_u64(w, t.rank() as u64)?;
    for &d in t.shape() {
        write_u64(w, d as u64)?;
    }
    for &v in t.data() {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let rank = read_u64(r)? as usize;
    if rank > 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "rank too large"));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(read_u64(r)? as usize);
    }
    let n: usize = shape.iter().product();
    if n > (1 << 30) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "tensor too large",
        ));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Tensor::from_vec(data, &shape)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn write_grid(w: &mut impl Write, g: &Grid) -> io::Result<()> {
    write_u64(w, g.nx as u64)?;
    write_u64(w, g.ny as u64)?;
    write_u64(w, g.nz as u64)?;
    write_f32(w, g.dx)?;
    write_f32(w, g.dy)?;
    write_f32(w, g.dz)
}

fn read_grid(r: &mut impl Read) -> io::Result<Grid> {
    let (nx, ny, nz) = (
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    );
    let (dx, dy, dz) = (read_f32(r)?, read_f32(r)?, read_f32(r)?);
    Grid::new(nx, ny, nz, dx, dy, dz)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn style_code(s: ClipStyle) -> u64 {
    match s {
        ClipStyle::RegularArray => 0,
        ClipStyle::Staggered => 1,
        ClipStyle::Random => 2,
        ClipStyle::Mixed => 3,
    }
}

fn style_from(code: u64) -> io::Result<ClipStyle> {
    Ok(match code {
        0 => ClipStyle::RegularArray,
        1 => ClipStyle::Staggered,
        2 => ClipStyle::Random,
        3 => ClipStyle::Mixed,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown clip style",
            ))
        }
    })
}

fn write_sample(w: &mut impl Write, s: &Sample) -> io::Result<()> {
    // Clip.
    write_tensor(w, &s.clip.pattern)?;
    write_u64(w, s.clip.contacts.len() as u64)?;
    for c in &s.clip.contacts {
        for v in [c.cy, c.cx, c.w, c.h] {
            write_f32(w, v)?;
        }
    }
    write_u64(w, style_code(s.clip.style))?;
    write_u64(w, s.clip.seed)?;
    // Fields.
    write_tensor(w, &s.acid0)?;
    write_tensor(w, &s.inhibitor)?;
    write_tensor(w, &s.label)?;
    // CDs.
    write_u64(w, s.cds.len() as u64)?;
    for cd in &s.cds {
        write_f32(w, cd.cd_x_nm)?;
        write_f32(w, cd.cd_y_nm)?;
        write_u64(w, cd.open as u64)?;
        write_u64(w, cd.centre.0 as u64)?;
        write_u64(w, cd.centre.1 as u64)?;
    }
    write_u64(w, s.rigorous_peb_time.as_micros() as u64)
}

fn read_sample(r: &mut impl Read) -> io::Result<Sample> {
    let pattern = read_tensor(r)?;
    let n_contacts = read_u64(r)? as usize;
    let mut contacts = Vec::with_capacity(n_contacts);
    for _ in 0..n_contacts {
        contacts.push(Contact {
            cy: read_f32(r)?,
            cx: read_f32(r)?,
            w: read_f32(r)?,
            h: read_f32(r)?,
        });
    }
    let style = style_from(read_u64(r)?)?;
    let seed = read_u64(r)?;
    let acid0 = read_tensor(r)?;
    let inhibitor = read_tensor(r)?;
    let label = read_tensor(r)?;
    let n_cds = read_u64(r)? as usize;
    let mut cds = Vec::with_capacity(n_cds);
    for _ in 0..n_cds {
        cds.push(ContactCd {
            cd_x_nm: read_f32(r)?,
            cd_y_nm: read_f32(r)?,
            open: read_u64(r)? != 0,
            centre: (read_u64(r)? as usize, read_u64(r)? as usize),
        });
    }
    let micros = read_u64(r)?;
    Ok(Sample {
        clip: MaskClip {
            pattern,
            contacts,
            style,
            seed,
        },
        acid0,
        inhibitor,
        label,
        cds,
        rigorous_peb_time: Duration::from_micros(micros),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    #[test]
    fn roundtrip_preserves_dataset() {
        let mut grid = Grid::small();
        grid.nz = 3;
        let mut cfg = DatasetConfig::for_grid(grid, 1, 1);
        cfg.seed = 5;
        let ds = Dataset::generate(&cfg).unwrap();
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        save_dataset(&ds, &path).unwrap();
        let loaded = load_dataset(&path).unwrap();
        assert_eq!(loaded.grid, ds.grid);
        assert_eq!(loaded.train.len(), 1);
        assert_eq!(loaded.train[0].acid0, ds.train[0].acid0);
        assert_eq!(loaded.train[0].label, ds.train[0].label);
        assert_eq!(loaded.train[0].clip, ds.train[0].clip);
        assert_eq!(loaded.test[0].cds, ds.test[0].cds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad_magic.bin");
        std::fs::write(&path, b"NOTDATA!extra").unwrap();
        let err = load_dataset(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("truncated.bin");
        std::fs::write(&path, MAGIC).unwrap();
        assert!(load_dataset(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}

/// Saves a flat list of tensors (e.g. model parameters in
/// `Parameterized::parameters()` order) to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_tensors(tensors: &[Tensor], path: &Path) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(b"PEBTENS1")?;
    write_u64(&mut w, tensors.len() as u64)?;
    for t in tensors {
        write_tensor(&mut w, t)?;
    }
    w.flush()
}

/// Loads a flat list of tensors written by [`save_tensors`].
///
/// # Errors
///
/// Returns `InvalidData` for format mismatches or any underlying I/O
/// error.
pub fn load_tensors(path: &Path) -> io::Result<Vec<Tensor>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != b"PEBTENS1" {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "not a PEB tensor bundle",
        ));
    }
    let n = read_u64(&mut r)? as usize;
    if n > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "too many tensors",
        ));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(read_tensor(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tensor_bundle_tests {
    use super::*;

    #[test]
    fn tensor_bundle_roundtrip() {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bundle.bin");
        let tensors = vec![
            Tensor::from_fn(&[2, 3], |i| i as f32),
            Tensor::scalar(7.5),
            Tensor::zeros(&[4]),
        ];
        save_tensors(&tensors, &path).unwrap();
        let loaded = load_tensors(&path).unwrap();
        assert_eq!(loaded, tensors);
        std::fs::remove_file(&path).ok();
    }
}
