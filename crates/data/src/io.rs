//! Versioned binary cache for generated datasets.
//!
//! The rigorous solves are the expensive part of every experiment, so
//! datasets are written to disk after first generation. The format is a
//! minimal little-endian binary codec (no external serialisation backend
//! is in the allowed dependency set).
//!
//! Format versions:
//!
//! * `PEBDATA3` (current) — the v2 body followed by a little-endian
//!   CRC-32 (IEEE) footer over every preceding byte including the magic.
//!   Files are written atomically (temp file + fsync + rename) via
//!   `peb-guard`, so a crash mid-write never leaves a torn cache behind.
//! * `PEBDATA2` (legacy) — same body, no checksum. Still readable;
//!   [`LoadReport::crc_ok`] is `None` for such files.
//!
//! Corruption handling is explicit: [`load_dataset`] is strict (any
//! checksum or decode failure is a typed [`PebError::Corrupt`]), while
//! [`load_dataset_lenient`] quarantines corrupt *trailing* samples and
//! returns the longest valid prefix together with a per-sample issue
//! report, so a partially damaged cache still yields usable data.

use std::io::{self, Read, Write};
use std::path::Path;
use std::time::Duration;

use peb_guard::{chaos, crc32, Context, PebError};
use peb_litho::{ClipStyle, Contact, ContactCd, Grid, MaskClip};
use peb_tensor::Tensor;

use crate::dataset::{Dataset, Sample};

const MAGIC_V3: &[u8; 8] = b"PEBDATA3";
const MAGIC_V2: &[u8; 8] = b"PEBDATA2";
const TENSOR_MAGIC: &[u8; 8] = b"PEBTENS1";

/// One quarantined sample from a lenient load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleIssue {
    /// Which split the sample belonged to.
    pub split: Split,
    /// Index within that split.
    pub index: usize,
    /// Human-readable decode failure.
    pub detail: String,
}

/// Train/test split tag for [`SampleIssue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Split {
    /// Training split.
    Train,
    /// Test split.
    Test,
}

impl std::fmt::Display for Split {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Split::Train => write!(f, "train"),
            Split::Test => write!(f, "test"),
        }
    }
}

/// Outcome report of a lenient dataset load.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Format version of the file (2 or 3).
    pub version: u32,
    /// Whole-file checksum verdict; `None` for legacy v2 files, which
    /// carry no checksum.
    pub crc_ok: Option<bool>,
    /// Samples that could not be decoded. The codec is streaming, so the
    /// first corrupt sample quarantines everything after it; the issue
    /// list records the first failure plus the count it drags down.
    pub quarantined: Vec<SampleIssue>,
    /// Samples declared by the header but not recovered.
    pub lost: usize,
}

impl LoadReport {
    /// True when the file was fully intact.
    pub fn clean(&self) -> bool {
        self.quarantined.is_empty() && self.lost == 0 && self.crc_ok != Some(false)
    }
}

/// Saves a dataset to `path` in the current (`PEBDATA3`) format: CRC-32
/// footer, atomic temp-file + fsync + rename write.
///
/// # Errors
///
/// Returns [`PebError::Io`] for any underlying I/O failure.
pub fn save_dataset(ds: &Dataset, path: &Path) -> Result<(), PebError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(MAGIC_V3);
    write_body(&mut buf, ds).map_err(PebError::from)?;
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    peb_guard::atomic_write(path, &buf)
        .with_ctx(|| format!("saving dataset to {}", path.display()))?;
    chaos::mangle_dataset(path);
    Ok(())
}

/// Loads a dataset from `path`, strictly: a checksum mismatch or any
/// decode failure is an error. Reads both `PEBDATA3` and legacy
/// `PEBDATA2` files.
///
/// # Errors
///
/// [`PebError::Corrupt`] for checksum/format/version damage,
/// [`PebError::Io`] for underlying I/O failures.
pub fn load_dataset(path: &Path) -> Result<Dataset, PebError> {
    let (ds, report) = load_dataset_with(path, true)?;
    debug_assert!(report.clean());
    Ok(ds)
}

/// Loads a dataset, quarantining corrupt trailing samples instead of
/// failing: the longest cleanly-decodable prefix is returned together
/// with a [`LoadReport`] naming what was dropped.
///
/// # Errors
///
/// Still fails ([`PebError::Corrupt`]) when the header or grid — the
/// part nothing can be recovered without — does not decode.
pub fn load_dataset_lenient(path: &Path) -> Result<(Dataset, LoadReport), PebError> {
    load_dataset_with(path, false)
}

/// Shared implementation behind [`load_dataset`] (`strict = true`) and
/// [`load_dataset_lenient`] (`strict = false`).
///
/// # Errors
///
/// See [`load_dataset`] / [`load_dataset_lenient`].
pub fn load_dataset_with(path: &Path, strict: bool) -> Result<(Dataset, LoadReport), PebError> {
    let bytes = std::fs::read(path).with_ctx(|| format!("reading {}", path.display()))?;
    if bytes.len() < 8 {
        return Err(PebError::corrupt(format!(
            "{}: file too short ({} bytes) to be a PEB dataset cache",
            path.display(),
            bytes.len()
        )));
    }
    let (version, crc_ok, body): (u32, Option<bool>, &[u8]) = if bytes.starts_with(MAGIC_V3) {
        if bytes.len() < 12 {
            return Err(PebError::corrupt(format!(
                "{}: v3 file too short for its checksum footer",
                path.display()
            )));
        }
        let payload_end = bytes.len() - 4;
        let stored = u32::from_le_bytes([
            bytes[payload_end],
            bytes[payload_end + 1],
            bytes[payload_end + 2],
            bytes[payload_end + 3],
        ]);
        let ok = crc32(&bytes[..payload_end]) == stored;
        if strict && !ok {
            return Err(PebError::corrupt(format!(
                "{}: CRC-32 mismatch (stored {stored:#010x})",
                path.display()
            )));
        }
        (3, Some(ok), &bytes[8..payload_end])
    } else if bytes.starts_with(MAGIC_V2) {
        (2, None, &bytes[8..])
    } else {
        return Err(PebError::corrupt(format!(
            "{}: not a PEB dataset cache (bad magic)",
            path.display()
        )));
    };

    let mut r = body;
    // The grid and split lengths are non-negotiable even leniently.
    let grid = read_grid(&mut r)
        .map_err(PebError::from)
        .ctx("decoding dataset grid")?;
    let mut report = LoadReport {
        version,
        crc_ok,
        quarantined: Vec::new(),
        lost: 0,
    };
    let train = read_split(&mut r, Split::Train, strict, &mut report)?;
    // A corrupt train split loses the stream position; the test split is
    // unreachable then and read_split already accounted for it.
    let test = if report.quarantined.is_empty() {
        read_split(&mut r, Split::Test, strict, &mut report)?
    } else {
        Vec::new()
    };
    Ok((Dataset { grid, train, test }, report))
}

/// Reads one length-prefixed sample list, quarantining the corrupt tail
/// when `strict` is false.
fn read_split(
    r: &mut &[u8],
    split: Split,
    strict: bool,
    report: &mut LoadReport,
) -> Result<Vec<Sample>, PebError> {
    let declared = match read_u64(r) {
        Ok(n) => n as usize,
        Err(e) if strict => {
            return Err(PebError::from(e).context(format!("reading {split} split length")))
        }
        Err(e) => {
            report.quarantined.push(SampleIssue {
                split,
                index: 0,
                detail: format!("split length unreadable: {e}"),
            });
            return Ok(Vec::new());
        }
    };
    if declared > 1 << 24 {
        return Err(PebError::corrupt(format!(
            "{split} split declares {declared} samples — implausible, refusing"
        )));
    }
    let mut out = Vec::with_capacity(declared.min(1024));
    for i in 0..declared {
        match read_sample(r) {
            Ok(s) => out.push(s),
            Err(e) if strict => {
                return Err(PebError::from(e).context(format!("decoding {split} sample {i}")))
            }
            Err(e) => {
                // Streaming codec: sync is gone, everything after this
                // sample is unrecoverable. Quarantine the tail.
                report.quarantined.push(SampleIssue {
                    split,
                    index: i,
                    detail: e.to_string(),
                });
                report.lost += declared - i;
                *r = &[];
                break;
            }
        }
    }
    Ok(out)
}

// --- primitive codecs -----------------------------------------------------

fn write_u64(w: &mut impl Write, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u64(r: &mut impl Read) -> io::Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b)?;
    Ok(u64::from_le_bytes(b))
}

fn write_f32(w: &mut impl Write, v: f32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_f32(r: &mut impl Read) -> io::Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(f32::from_le_bytes(b))
}

fn write_tensor(w: &mut impl Write, t: &Tensor) -> io::Result<()> {
    write_u64(w, t.rank() as u64)?;
    for &d in t.shape() {
        write_u64(w, d as u64)?;
    }
    for &v in t.data() {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor> {
    let rank = read_u64(r)? as usize;
    if rank > 8 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "rank too large"));
    }
    let mut shape = Vec::with_capacity(rank);
    for _ in 0..rank {
        shape.push(read_u64(r)? as usize);
    }
    let n: usize = shape.iter().product();
    if n > (1 << 30) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "tensor too large",
        ));
    }
    let mut data = Vec::with_capacity(n);
    for _ in 0..n {
        data.push(read_f32(r)?);
    }
    Tensor::from_vec(data, &shape)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn write_grid(w: &mut impl Write, g: &Grid) -> io::Result<()> {
    write_u64(w, g.nx as u64)?;
    write_u64(w, g.ny as u64)?;
    write_u64(w, g.nz as u64)?;
    write_f32(w, g.dx)?;
    write_f32(w, g.dy)?;
    write_f32(w, g.dz)
}

fn read_grid(r: &mut impl Read) -> io::Result<Grid> {
    let (nx, ny, nz) = (
        read_u64(r)? as usize,
        read_u64(r)? as usize,
        read_u64(r)? as usize,
    );
    let (dx, dy, dz) = (read_f32(r)?, read_f32(r)?, read_f32(r)?);
    Grid::new(nx, ny, nz, dx, dy, dz)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

fn style_code(s: ClipStyle) -> u64 {
    match s {
        ClipStyle::RegularArray => 0,
        ClipStyle::Staggered => 1,
        ClipStyle::Random => 2,
        ClipStyle::Mixed => 3,
    }
}

fn style_from(code: u64) -> io::Result<ClipStyle> {
    Ok(match code {
        0 => ClipStyle::RegularArray,
        1 => ClipStyle::Staggered,
        2 => ClipStyle::Random,
        3 => ClipStyle::Mixed,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "unknown clip style",
            ))
        }
    })
}

fn write_body(w: &mut impl Write, ds: &Dataset) -> io::Result<()> {
    write_grid(w, &ds.grid)?;
    write_u64(w, ds.train.len() as u64)?;
    for s in &ds.train {
        write_sample(w, s)?;
    }
    write_u64(w, ds.test.len() as u64)?;
    for s in &ds.test {
        write_sample(w, s)?;
    }
    Ok(())
}

fn write_sample(w: &mut impl Write, s: &Sample) -> io::Result<()> {
    // Clip.
    write_tensor(w, &s.clip.pattern)?;
    write_u64(w, s.clip.contacts.len() as u64)?;
    for c in &s.clip.contacts {
        for v in [c.cy, c.cx, c.w, c.h] {
            write_f32(w, v)?;
        }
    }
    write_u64(w, style_code(s.clip.style))?;
    write_u64(w, s.clip.seed)?;
    // Fields.
    write_tensor(w, &s.acid0)?;
    write_tensor(w, &s.inhibitor)?;
    write_tensor(w, &s.label)?;
    // CDs.
    write_u64(w, s.cds.len() as u64)?;
    for cd in &s.cds {
        write_f32(w, cd.cd_x_nm)?;
        write_f32(w, cd.cd_y_nm)?;
        write_u64(w, cd.open as u64)?;
        write_u64(w, cd.centre.0 as u64)?;
        write_u64(w, cd.centre.1 as u64)?;
    }
    write_u64(w, s.rigorous_peb_time.as_micros() as u64)
}

fn read_sample(r: &mut impl Read) -> io::Result<Sample> {
    let pattern = read_tensor(r)?;
    let n_contacts = read_u64(r)? as usize;
    if n_contacts > 1 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "too many contacts",
        ));
    }
    let mut contacts = Vec::with_capacity(n_contacts);
    for _ in 0..n_contacts {
        contacts.push(Contact {
            cy: read_f32(r)?,
            cx: read_f32(r)?,
            w: read_f32(r)?,
            h: read_f32(r)?,
        });
    }
    let style = style_from(read_u64(r)?)?;
    let seed = read_u64(r)?;
    let acid0 = read_tensor(r)?;
    let inhibitor = read_tensor(r)?;
    let label = read_tensor(r)?;
    let n_cds = read_u64(r)? as usize;
    if n_cds > 1 << 20 {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "too many CDs"));
    }
    let mut cds = Vec::with_capacity(n_cds);
    for _ in 0..n_cds {
        cds.push(ContactCd {
            cd_x_nm: read_f32(r)?,
            cd_y_nm: read_f32(r)?,
            open: read_u64(r)? != 0,
            centre: (read_u64(r)? as usize, read_u64(r)? as usize),
        });
    }
    let micros = read_u64(r)?;
    Ok(Sample {
        clip: MaskClip {
            pattern,
            contacts,
            style,
            seed,
        },
        acid0,
        inhibitor,
        label,
        cds,
        rigorous_peb_time: Duration::from_micros(micros),
    })
}

/// Saves a flat list of tensors (e.g. model parameters in
/// `Parameterized::parameters()` order) to `path`, atomically.
///
/// # Errors
///
/// Returns [`PebError::Io`] for any underlying I/O failure.
pub fn save_tensors(tensors: &[Tensor], path: &Path) -> Result<(), PebError> {
    let mut buf = Vec::new();
    buf.extend_from_slice(TENSOR_MAGIC);
    write_u64(&mut buf, tensors.len() as u64).map_err(PebError::from)?;
    for t in tensors {
        write_tensor(&mut buf, t).map_err(PebError::from)?;
    }
    peb_guard::atomic_write(path, &buf)
        .with_ctx(|| format!("saving tensor bundle to {}", path.display()))
}

/// Loads a flat list of tensors written by [`save_tensors`].
///
/// # Errors
///
/// [`PebError::Corrupt`] for format mismatches, [`PebError::Io`] for
/// underlying I/O errors.
pub fn load_tensors(path: &Path) -> Result<Vec<Tensor>, PebError> {
    let bytes = std::fs::read(path).with_ctx(|| format!("reading {}", path.display()))?;
    if !bytes.starts_with(TENSOR_MAGIC) {
        return Err(PebError::corrupt(format!(
            "{}: not a PEB tensor bundle",
            path.display()
        )));
    }
    let mut r = &bytes[8..];
    let n = read_u64(&mut r).map_err(PebError::from)? as usize;
    if n > 1 << 20 {
        return Err(PebError::corrupt("too many tensors"));
    }
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        out.push(
            read_tensor(&mut r)
                .map_err(PebError::from)
                .with_ctx(|| format!("decoding tensor {i} of {}", path.display()))?,
        );
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::DatasetConfig;

    fn tiny_dataset(seed: u64) -> Dataset {
        let mut grid = Grid::small();
        grid.nz = 3;
        let mut cfg = DatasetConfig::for_grid(grid, 2, 1);
        cfg.seed = seed;
        Dataset::generate(&cfg).expect("dataset generation")
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_dataset() {
        let ds = tiny_dataset(5);
        let path = temp_path("roundtrip.bin");
        save_dataset(&ds, &path).expect("save");
        let loaded = load_dataset(&path).expect("load");
        assert_eq!(loaded.grid, ds.grid);
        assert_eq!(loaded.train.len(), 2);
        assert_eq!(loaded.train[0].acid0, ds.train[0].acid0);
        assert_eq!(loaded.train[0].label, ds.train[0].label);
        assert_eq!(loaded.train[0].clip, ds.train[0].clip);
        assert_eq!(loaded.test[0].cds, ds.test[0].cds);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn legacy_v2_files_still_load() {
        let ds = tiny_dataset(6);
        let path = temp_path("legacy_v2.bin");
        // Write the old format by hand: v2 magic + body, no footer.
        let mut buf = Vec::new();
        buf.extend_from_slice(MAGIC_V2);
        write_body(&mut buf, &ds).expect("serialize");
        std::fs::write(&path, &buf).expect("write");
        let (loaded, report) = load_dataset_lenient(&path).expect("legacy load");
        assert_eq!(report.version, 2);
        assert_eq!(report.crc_ok, None);
        assert!(report.clean());
        assert_eq!(loaded.train[0].acid0, ds.train[0].acid0);
        assert!(load_dataset(&path).is_ok(), "strict must accept v2 too");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = temp_path("bad_magic.bin");
        std::fs::write(&path, b"NOTDATA!extra").expect("write");
        let err = load_dataset(&path).expect_err("must reject");
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_truncated_file() {
        let path = temp_path("truncated.bin");
        std::fs::write(&path, MAGIC_V3).expect("write");
        let err = load_dataset(&path).expect_err("must reject");
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn strict_load_detects_single_bit_flip() {
        let ds = tiny_dataset(7);
        let path = temp_path("bitflip.bin");
        save_dataset(&ds, &path).expect("save");
        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).expect("rewrite");
        let err = load_dataset(&path).expect_err("flip must be caught");
        assert!(err.is_corrupt(), "{err}");
    }

    #[test]
    fn lenient_load_quarantines_corrupt_tail() {
        let ds = tiny_dataset(8);
        let path = temp_path("quarantine.bin");
        save_dataset(&ds, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        // Truncate inside the last sample (drop the footer plus a chunk
        // of the final test sample).
        let cut = bytes.len() - bytes.len() / 4;
        std::fs::write(&path, &bytes[..cut]).expect("truncate");
        // The truncated file has no valid v3 footer → strict load fails…
        assert!(load_dataset(&path).is_err());
        // …but the lenient load recovers the intact prefix.
        let (loaded, report) = load_dataset_lenient(&path).expect("lenient load");
        assert_eq!(report.crc_ok, Some(false));
        assert!(!report.clean());
        assert!(!report.quarantined.is_empty());
        assert!(report.lost >= 1);
        assert_eq!(loaded.grid, ds.grid);
        let recovered = loaded.train.len() + loaded.test.len();
        assert!(
            recovered < ds.train.len() + ds.test.len(),
            "something must have been dropped"
        );
        for (got, want) in loaded.train.iter().zip(&ds.train) {
            assert_eq!(got.acid0, want.acid0, "recovered prefix must be intact");
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_atomic_no_temp_left_behind() {
        let ds = tiny_dataset(9);
        let path = temp_path("atomic.bin");
        save_dataset(&ds, &path).expect("save");
        let dir = path.parent().expect("parent");
        let leftovers: Vec<_> = std::fs::read_dir(dir)
            .expect("read dir")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        std::fs::remove_file(&path).ok();
    }
}

#[cfg(test)]
mod tensor_bundle_tests {
    use super::*;

    #[test]
    fn tensor_bundle_roundtrip() {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("bundle.bin");
        let tensors = vec![
            Tensor::from_fn(&[2, 3], |i| i as f32),
            Tensor::scalar(7.5),
            Tensor::zeros(&[4]),
        ];
        save_tensors(&tensors, &path).expect("save");
        let loaded = load_tensors(&path).expect("load");
        assert_eq!(loaded, tensors);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn tensor_bundle_rejects_bad_magic() {
        let dir = std::env::temp_dir().join("peb_data_io_test");
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("bundle_bad.bin");
        std::fs::write(&path, b"PEBWRONGxxxx").expect("write");
        let err = load_tensors(&path).expect_err("must reject");
        assert!(err.is_corrupt(), "{err}");
        std::fs::remove_file(&path).ok();
    }
}
