//! Dataset generation via the rigorous simulator.

use std::time::Duration;

use peb_litho::{ContactCd, Grid, LithoFlow, MaskClip, MaskConfig};
use peb_tensor::Tensor;
use sdm_peb::LabelTransform;

/// One supervised sample: everything the models and metrics need.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// The mask clip this sample was simulated from.
    pub clip: MaskClip,
    /// Initial photoacid `[A]₀` (model input), `[D, H, W]`.
    pub acid0: Tensor,
    /// Rigorous final inhibitor `[I]` (ground truth), `[D, H, W]`.
    pub inhibitor: Tensor,
    /// Label-space target `Y = −ln(−ln([I]) / k_c)`.
    pub label: Tensor,
    /// Ground-truth contact CDs from the rigorous profile.
    pub cds: Vec<ContactCd>,
    /// Wall-clock time of the rigorous PEB solve for this sample.
    pub rigorous_peb_time: Duration,
}

/// Dataset generation configuration.
#[derive(Debug, Clone)]
pub struct DatasetConfig {
    /// Simulation grid.
    pub grid: Grid,
    /// Training samples.
    pub n_train: usize,
    /// Held-out test samples.
    pub n_test: usize,
    /// Base seed; sample `i` uses `seed + i` (train/test splits never
    /// overlap because test seeds continue after train seeds — the fixed
    /// split shared by all methods, as the paper requires for fairness).
    pub seed: u64,
    /// Mask generator settings.
    pub mask: MaskConfig,
}

impl DatasetConfig {
    /// Default configuration for a grid.
    pub fn for_grid(grid: Grid, n_train: usize, n_test: usize) -> Self {
        DatasetConfig {
            grid,
            n_train,
            n_test,
            seed: 1000,
            mask: MaskConfig::demo(grid.nx),
        }
    }
}

/// A generated train/test dataset.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Simulation grid shared by all samples.
    pub grid: Grid,
    /// Training samples.
    pub train: Vec<Sample>,
    /// Test samples.
    pub test: Vec<Sample>,
}

impl Dataset {
    /// Generates a dataset by running the rigorous flow per clip.
    ///
    /// # Errors
    ///
    /// Propagates litho-simulation errors.
    pub fn generate(cfg: &DatasetConfig) -> peb_litho::Result<Self> {
        let flow = LithoFlow::new(cfg.grid);
        let label = LabelTransform {
            kc: flow.peb.kc,
            ..LabelTransform::paper()
        };
        let make = |seed: u64| -> peb_litho::Result<Sample> {
            let clip = cfg.mask.generate(seed)?;
            let sim = flow.run(&clip)?;
            Ok(Sample {
                label: label.encode(&sim.inhibitor),
                acid0: sim.acid0,
                inhibitor: sim.inhibitor,
                cds: sim.cds,
                rigorous_peb_time: sim.peb_elapsed,
                clip,
            })
        };
        let mut train = Vec::with_capacity(cfg.n_train);
        for i in 0..cfg.n_train {
            train.push(make(cfg.seed + i as u64)?);
        }
        let mut test = Vec::with_capacity(cfg.n_test);
        for i in 0..cfg.n_test {
            test.push(make(cfg.seed + (cfg.n_train + i) as u64)?);
        }
        Ok(Dataset {
            grid: cfg.grid,
            train,
            test,
        })
    }

    /// `(acid, label)` pairs for the trainer.
    pub fn training_pairs(&self) -> Vec<(Tensor, Tensor)> {
        self.train
            .iter()
            .map(|s| (s.acid0.clone(), s.label.clone()))
            .collect()
    }

    /// Mean rigorous PEB solve time across all samples (the "S-Litho"
    /// runtime column of the speedup comparison).
    pub fn mean_rigorous_peb_time(&self) -> Duration {
        let all: Vec<&Sample> = self.train.iter().chain(self.test.iter()).collect();
        if all.is_empty() {
            return Duration::ZERO;
        }
        let total: Duration = all.iter().map(|s| s.rigorous_peb_time).sum();
        total / all.len() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DatasetConfig {
        let mut grid = Grid::small();
        grid.nz = 4;
        let mut cfg = DatasetConfig::for_grid(grid, 2, 1);
        cfg.seed = 77;
        cfg
    }

    #[test]
    fn generate_produces_consistent_samples() {
        let ds = Dataset::generate(&small_cfg()).expect("test value");
        assert_eq!(ds.train.len(), 2);
        assert_eq!(ds.test.len(), 1);
        for s in ds.train.iter().chain(&ds.test) {
            assert_eq!(s.acid0.shape(), &ds.grid.shape3());
            assert_eq!(s.label.shape(), &ds.grid.shape3());
            // Label transform must invert back to the inhibitor.
            let decoded = LabelTransform::paper().decode(&s.label);
            assert!(decoded.max_abs_diff(&s.inhibitor) < 1e-3);
            assert!(!s.cds.is_empty());
        }
    }

    #[test]
    fn train_and_test_differ() {
        let ds = Dataset::generate(&small_cfg()).expect("test value");
        assert_ne!(ds.train[0].acid0, ds.test[0].acid0);
        assert_ne!(ds.train[0].clip.seed, ds.test[0].clip.seed);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::generate(&small_cfg()).expect("test value");
        let b = Dataset::generate(&small_cfg()).expect("test value");
        assert_eq!(a.train[0].acid0, b.train[0].acid0);
        assert_eq!(a.train[0].label, b.train[0].label);
    }

    #[test]
    fn training_pairs_match_samples() {
        let ds = Dataset::generate(&small_cfg()).expect("test value");
        let pairs = ds.training_pairs();
        assert_eq!(pairs.len(), 2);
        assert_eq!(pairs[0].0, ds.train[0].acid0);
        assert_eq!(pairs[1].1, ds.train[1].label);
    }
}

/// Standardisation statistics of the label space, computed on the
/// training split.
///
/// The raw label `Y = −ln(−ln([I])/k_c)` spans roughly `[−3, 14]`, which
/// destabilises small-budget training; every model in the harness is
/// trained on `(Y − mean) / std` and predictions are destandardised
/// before metrics. This is a training-convenience reparameterisation
/// only — the loss terms still act on the paper's label space geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabelStats {
    /// Mean of the training labels.
    pub mean: f32,
    /// Standard deviation of the training labels (≥ 1e-6).
    pub std: f32,
}

impl LabelStats {
    /// Computes statistics over the training split.
    ///
    /// # Panics
    ///
    /// Panics on an empty training split.
    pub fn from_dataset(ds: &Dataset) -> Self {
        assert!(!ds.train.is_empty(), "LabelStats needs training samples");
        let mut sum = 0f64;
        let mut count = 0usize;
        for s in &ds.train {
            sum += s.label.data().iter().map(|&v| v as f64).sum::<f64>();
            count += s.label.len();
        }
        let mean = (sum / count as f64) as f32;
        let mut var = 0f64;
        for s in &ds.train {
            var += s
                .label
                .data()
                .iter()
                .map(|&v| ((v - mean) as f64).powi(2))
                .sum::<f64>();
        }
        let std = ((var / count as f64).sqrt() as f32).max(1e-6);
        LabelStats { mean, std }
    }

    /// `(t − mean) / std` elementwise.
    pub fn normalize(&self, t: &Tensor) -> Tensor {
        let (m, s) = (self.mean, self.std);
        t.map(|v| (v - m) / s)
    }

    /// `t · std + mean` elementwise.
    pub fn denormalize(&self, t: &Tensor) -> Tensor {
        let (m, s) = (self.mean, self.std);
        t.map(|v| v * s + m)
    }
}

#[cfg(test)]
mod label_stats_tests {
    use super::*;

    #[test]
    fn standardisation_roundtrip_and_moments() {
        let mut grid = Grid::small();
        grid.nz = 3;
        let cfg = DatasetConfig::for_grid(grid, 2, 1);
        let ds = Dataset::generate(&cfg).expect("test value");
        let stats = LabelStats::from_dataset(&ds);
        assert!(stats.std > 0.0);
        let t = &ds.train[0].label;
        let back = stats.denormalize(&stats.normalize(t));
        assert!(back.max_abs_diff(t) < 1e-3);
        // Normalised training labels have ~zero mean overall.
        let mut total = 0f64;
        let mut n = 0usize;
        for s in &ds.train {
            let z = stats.normalize(&s.label);
            total += z.data().iter().map(|&v| v as f64).sum::<f64>();
            n += z.len();
        }
        assert!((total / n as f64).abs() < 1e-3);
    }
}

/// Expands `(acid, label)` pairs with the grid's mirror symmetries:
/// identity, x-flip, y-flip and both. The PEB physics is equivariant
/// under these (zero-flux boundaries, isotropic lateral diffusion), so
/// this quadruples the effective training set for free — the standard
/// lithography-ML augmentation.
pub fn augment_with_flips(pairs: &[(Tensor, Tensor)]) -> Vec<(Tensor, Tensor)> {
    let mut out = Vec::with_capacity(pairs.len() * 4);
    for (acid, label) in pairs {
        out.push((acid.clone(), label.clone()));
        // Axis 2 = x, axis 1 = y for [D, H, W] volumes.
        let fx = |t: &Tensor| t.flip_axis(2).expect("x flip");
        let fy = |t: &Tensor| t.flip_axis(1).expect("y flip");
        out.push((fx(acid), fx(label)));
        out.push((fy(acid), fy(label)));
        out.push((fy(&fx(acid)), fy(&fx(label))));
    }
    out
}

#[cfg(test)]
mod augment_tests {
    use super::*;

    #[test]
    fn quadruples_and_preserves_statistics() {
        let a = Tensor::from_fn(&[2, 3, 4], |i| i as f32);
        let l = a.mul_scalar(2.0);
        let aug = augment_with_flips(&[(a.clone(), l)]);
        assert_eq!(aug.len(), 4);
        for (acid, label) in &aug {
            assert_eq!(acid.shape(), a.shape());
            assert!((acid.sum() - a.sum()).abs() < 1e-3);
            // Label stays locked to its acid under the same transform.
            assert!(label.approx_eq(&acid.mul_scalar(2.0), 1e-5));
        }
        // The flipped variants differ from the original.
        assert_ne!(aug[1].0, aug[0].0);
        assert_ne!(aug[2].0, aug[0].0);
    }
}

impl Dataset {
    /// Generates a dataset with the rigorous solves fanned out over
    /// `threads` workers from the shared [`peb_par`] pool (each clip is
    /// independent). Produces bit-identical output to
    /// [`Dataset::generate`] — every sample is seeded individually — so
    /// the two paths are interchangeable.
    ///
    /// # Errors
    ///
    /// Propagates litho-simulation errors from any worker.
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn generate_parallel(cfg: &DatasetConfig, threads: usize) -> peb_litho::Result<Self> {
        assert!(threads > 0, "need at least one worker thread");
        let total = cfg.n_train + cfg.n_test;
        let flow = LithoFlow::new(cfg.grid);
        let label = LabelTransform {
            kc: flow.peb.kc,
            ..LabelTransform::paper()
        };
        let mut slots: Vec<Option<peb_litho::Result<Sample>>> = Vec::new();
        slots.resize_with(total, || None);
        peb_par::with_thread_count(threads, || {
            peb_par::parallel_chunks_mut(&mut slots, total.div_ceil(threads), |base, chunk| {
                for (off, slot) in chunk.iter_mut().enumerate() {
                    let i = base + off;
                    let result = cfg.mask.generate(cfg.seed + i as u64).and_then(|clip| {
                        let sim = flow.run(&clip)?;
                        Ok(Sample {
                            label: label.encode(&sim.inhibitor),
                            acid0: sim.acid0,
                            inhibitor: sim.inhibitor,
                            cds: sim.cds,
                            rigorous_peb_time: sim.peb_elapsed,
                            clip,
                        })
                    });
                    *slot = Some(result);
                }
            });
        });
        let mut samples = Vec::with_capacity(total);
        for slot in slots {
            samples.push(slot.expect("every slot filled")?);
        }
        let test = samples.split_off(cfg.n_train);
        Ok(Dataset {
            grid: cfg.grid,
            train: samples,
            test,
        })
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;

    #[test]
    fn parallel_matches_sequential() {
        let mut grid = Grid::small();
        grid.nz = 3;
        let mut cfg = DatasetConfig::for_grid(grid, 2, 1);
        cfg.seed = 314;
        let seq = Dataset::generate(&cfg).expect("test value");
        let par = Dataset::generate_parallel(&cfg, 2).expect("test value");
        assert_eq!(par.train.len(), seq.train.len());
        assert_eq!(par.test.len(), seq.test.len());
        for (a, b) in par.train.iter().zip(&seq.train) {
            assert_eq!(a.acid0, b.acid0);
            assert_eq!(a.label, b.label);
            assert_eq!(a.clip, b.clip);
        }
        assert_eq!(par.test[0].inhibitor, seq.test[0].inhibitor);
    }

    #[test]
    fn single_thread_works() {
        let mut grid = Grid::small();
        grid.nz = 2;
        let cfg = DatasetConfig::for_grid(grid, 1, 1);
        let ds = Dataset::generate_parallel(&cfg, 1).expect("test value");
        assert_eq!(ds.train.len() + ds.test.len(), 2);
    }
}
