//! Dataset plumbing for the SDM-PEB reproduction.
//!
//! Generates `(photoacid, inhibitor)` training pairs by running the
//! rigorous `peb-litho` flow over generated mask clips, exactly as the
//! paper generates its data with S-Litho over 100 proprietary clips.
//! Datasets are cacheable to disk in a simple versioned binary format so
//! the expensive rigorous solves run once per configuration.
//!
//! The [`ExperimentScale`] type centralises the `PEB_SCALE` environment
//! switch used by every benchmark binary: `tiny` (default), `small` or
//! `full`.

mod dataset;
mod io;
mod scale;
mod stats;

pub use dataset::{augment_with_flips, Dataset, DatasetConfig, LabelStats, Sample};
pub use io::{
    load_dataset, load_dataset_lenient, load_dataset_with, load_tensors, save_dataset,
    save_tensors, LoadReport, SampleIssue, Split,
};
pub use scale::ExperimentScale;
pub use stats::{value_histogram, HISTOGRAM_BIN_LABELS};
