//! Value-distribution statistics (paper Fig. 6).

use peb_tensor::Tensor;

/// Bin labels of the Fig. 6 histograms.
pub const HISTOGRAM_BIN_LABELS: [&str; 10] = [
    "[0.0, 0.1)",
    "[0.1, 0.2)",
    "[0.2, 0.3)",
    "[0.3, 0.4)",
    "[0.4, 0.5)",
    "[0.5, 0.6)",
    "[0.6, 0.7)",
    "[0.7, 0.8)",
    "[0.8, 0.9)",
    "[0.9, 1.0)",
];

/// Normalised 10-bin histogram of values over `[0, 1)` (values outside
/// are clamped to the boundary bins), as relative frequencies summing to
/// 1 across all supplied tensors.
pub fn value_histogram<'a>(fields: impl IntoIterator<Item = &'a Tensor>) -> [f64; 10] {
    let mut counts = [0u64; 10];
    let mut total = 0u64;
    for f in fields {
        for &v in f.data() {
            let bin = ((v * 10.0).floor() as i64).clamp(0, 9) as usize;
            counts[bin] += 1;
            total += 1;
        }
    }
    let mut out = [0f64; 10];
    if total > 0 {
        for (o, c) in out.iter_mut().zip(counts) {
            *o = c as f64 / total as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_values_spread_evenly() {
        let t = Tensor::from_fn(&[1000], |i| (i as f32 + 0.5) / 1000.0);
        let h = value_histogram([&t]);
        for b in h {
            assert!((b - 0.1).abs() < 0.01, "{h:?}");
        }
        assert!((h.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn concentrated_values_hit_one_bin() {
        let t = Tensor::full(&[50], 0.95);
        let h = value_histogram([&t]);
        assert_eq!(h[9], 1.0);
    }

    #[test]
    fn out_of_range_values_clamp() {
        let t = Tensor::from_vec(vec![-0.5, 1.5], &[2]).expect("test value");
        let h = value_histogram([&t]);
        assert_eq!(h[0], 0.5);
        assert_eq!(h[9], 0.5);
    }

    #[test]
    fn multiple_fields_pool() {
        let a = Tensor::full(&[10], 0.05);
        let b = Tensor::full(&[30], 0.55);
        let h = value_histogram([&a, &b]);
        assert!((h[0] - 0.25).abs() < 1e-9);
        assert!((h[5] - 0.75).abs() < 1e-9);
    }
}
