//! Experiment-size presets driven by the `PEB_SCALE` environment
//! variable.

use peb_litho::Grid;

use crate::dataset::DatasetConfig;

/// Experiment scale used by every benchmark binary.
///
/// The paper's setting (100 clips of 1000×1000×80 voxels, 500 epochs on
/// two RTX 3090s) is far beyond a CI-sized CPU budget, so the harness
/// exposes three presets; all architecture and physics settings are
/// identical across them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentScale {
    /// 32×32×8 grid, 12 train / 4 test clips, 60 epochs. Default.
    Tiny,
    /// 64×64×16 grid, 24 train / 8 test clips, 40 epochs.
    Small,
    /// 128×128×32 grid, 60 train / 20 test clips, 80 epochs.
    Full,
}

impl ExperimentScale {
    /// Reads `PEB_SCALE` (`tiny` | `small` | `full`), defaulting to
    /// [`ExperimentScale::Tiny`]; unknown values also fall back to tiny.
    pub fn from_env() -> Self {
        match std::env::var("PEB_SCALE").as_deref() {
            Ok("small") => ExperimentScale::Small,
            Ok("full") => ExperimentScale::Full,
            _ => ExperimentScale::Tiny,
        }
    }

    /// The simulation grid of this preset.
    pub fn grid(self) -> Grid {
        match self {
            ExperimentScale::Tiny => Grid::new(32, 32, 8, 4.0, 4.0, 10.0),
            ExperimentScale::Small => Grid::new(64, 64, 16, 4.0, 4.0, 5.0),
            ExperimentScale::Full => Grid::new(128, 128, 32, 2.0, 2.0, 2.5),
        }
        .expect("preset grids are valid")
    }

    /// Dataset configuration (sizes + seed) of this preset.
    pub fn dataset_config(self) -> DatasetConfig {
        let (train, test) = match self {
            ExperimentScale::Tiny => (12, 4),
            ExperimentScale::Small => (24, 8),
            ExperimentScale::Full => (60, 20),
        };
        DatasetConfig::for_grid(self.grid(), train, test)
    }

    /// Training epochs of this preset. Override with `PEB_EPOCHS`.
    pub fn epochs(self) -> usize {
        if let Ok(v) = std::env::var("PEB_EPOCHS") {
            if let Ok(n) = v.parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        match self {
            ExperimentScale::Tiny => 60,
            ExperimentScale::Small => 40,
            ExperimentScale::Full => 80,
        }
    }

    /// Preset name for file naming and logs.
    pub fn name(self) -> &'static str {
        match self {
            ExperimentScale::Tiny => "tiny",
            ExperimentScale::Small => "small",
            ExperimentScale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_consistent() {
        for s in [
            ExperimentScale::Tiny,
            ExperimentScale::Small,
            ExperimentScale::Full,
        ] {
            let g = s.grid();
            assert_eq!(g.thickness_nm(), 80.0, "{s:?} resist thickness");
            let cfg = s.dataset_config();
            assert!(cfg.n_train > cfg.n_test);
            assert!(s.epochs() >= 8);
            assert!(!s.name().is_empty());
        }
    }

    #[test]
    fn tiny_is_the_default() {
        // Note: don't mutate the process env in tests (other tests may
        // read it concurrently); just check the fallback behaviour holds
        // when the variable is absent or unknown.
        if std::env::var("PEB_SCALE").is_err() {
            assert_eq!(ExperimentScale::from_env(), ExperimentScale::Tiny);
        }
    }
}

#[cfg(test)]
mod epoch_override_tests {
    // The PEB_EPOCHS override is environment-global; keep this check
    // simple and read-only to avoid races with parallel tests.
    #[test]
    fn default_epochs_are_positive_without_override() {
        if std::env::var("PEB_EPOCHS").is_err() {
            for s in [
                super::ExperimentScale::Tiny,
                super::ExperimentScale::Small,
                super::ExperimentScale::Full,
            ] {
                assert!(s.epochs() > 0);
            }
        }
    }
}
