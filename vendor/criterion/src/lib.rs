//! Offline-vendored minimal criterion-compatible benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API used by this workspace's
//! benches (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `sample_size`, `iter`) with plain wall-clock measurement,
//! and adds a JSON emission path so the repo's performance trajectory can be
//! recorded per PR:
//!
//! * every bench binary writes `BENCH_<name>.json` (for a `bench_kernels`
//!   target, `BENCH_kernels.json`) into the invocation directory, or into
//!   `$PEB_BENCH_JSON` when that env var names a directory;
//! * `$PEB_BENCH_FAST=1` caps measurement at one sample per benchmark for
//!   smoke runs.
//!
//! Measurement model: one untimed warmup iteration, then `sample_size`
//! samples, each timing a batch of iterations sized so a sample takes
//! roughly [`TARGET_SAMPLE_NANOS`]; slow benchmarks degrade gracefully to
//! one iteration per sample.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

/// Re-export matching `criterion::black_box` (benches here use
/// `std::hint::black_box` directly, but keep the name available).
pub use std::hint::black_box;

const TARGET_SAMPLE_NANOS: u128 = 25_000_000;

/// One measured benchmark.
#[derive(Debug, Clone)]
pub struct BenchRecord {
    /// Benchmark group name.
    pub group: String,
    /// Benchmark id within the group.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub mean_ns: f64,
    /// Fastest sample, nanoseconds per iteration.
    pub min_ns: f64,
    /// Number of timed samples.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

/// Top-level harness state; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    records: Vec<BenchRecord>,
}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 10,
        }
    }

    /// Prints the summary table and writes the JSON report.
    ///
    /// Called by [`criterion_main!`]; `bench_name` is the bench target name
    /// (e.g. `bench_kernels`), used to derive the JSON file name.
    pub fn final_summary(&self, bench_name: &str) {
        let mut table = String::new();
        for r in &self.records {
            let _ = writeln!(
                table,
                "{:<28} {:<24} mean {:>12.1} ns  min {:>12.1} ns  ({} samples x {} iters)",
                r.group, r.id, r.mean_ns, r.min_ns, r.samples, r.iters_per_sample
            );
        }
        println!("{table}");
        let path = json_path(bench_name);
        match std::fs::write(&path, self.to_json(bench_name)) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
        }
    }

    fn to_json(&self, bench_name: &str) -> String {
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"bench\": \"{bench_name}\",");
        let _ = writeln!(out, "  \"threads\": {},", env_threads());
        let _ = writeln!(out, "  \"results\": [");
        for (i, r) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "    {{\"group\": \"{}\", \"id\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{comma}",
                escape(&r.group),
                escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.samples
            );
        }
        out.push_str("  ]\n}\n");
        out
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn env_threads() -> usize {
    std::env::var("PEB_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn json_path(bench_name: &str) -> PathBuf {
    let stem = bench_name.strip_prefix("bench_").unwrap_or(bench_name);
    let file = format!("BENCH_{stem}.json");
    match std::env::var("PEB_BENCH_JSON") {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir).join(file),
        _ => PathBuf::from(file),
    }
}

/// A group of related benchmarks; mirrors `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benches a closure under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher);
        self.record(id, bencher);
        self
    }

    /// Benches a closure that receives `input`; the input only
    /// disambiguates the id here.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher::new(self.sample_size);
        f(&mut bencher, input);
        self.record(id, bencher);
        self
    }

    /// Ends the group (statistics are recorded eagerly; kept for API
    /// compatibility).
    pub fn finish(&mut self) {}

    fn record(&mut self, id: BenchmarkId, bencher: Bencher) {
        if let Some(m) = bencher.measurement {
            self.criterion.records.push(BenchRecord {
                group: self.name.clone(),
                id: id.0,
                mean_ns: m.mean_ns,
                min_ns: m.min_ns,
                samples: m.samples,
                iters_per_sample: m.iters,
            });
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `name/parameter` id.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// Id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId(s)
    }
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    mean_ns: f64,
    min_ns: f64,
    samples: usize,
    iters: u64,
}

/// Runs and times the benchmark body; mirrors `criterion::Bencher`.
pub struct Bencher {
    sample_size: usize,
    measurement: Option<Measurement>,
}

impl Bencher {
    fn new(sample_size: usize) -> Self {
        let fast = std::env::var("PEB_BENCH_FAST")
            .map(|v| v == "1")
            .unwrap_or(false);
        Bencher {
            sample_size: if fast { 1 } else { sample_size },
            measurement: None,
        }
    }

    /// Times `f`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Untimed warmup that also provides a cost estimate.
        let warm = Instant::now();
        black_box(f());
        let est = warm.elapsed().as_nanos().max(1);
        let iters = (TARGET_SAMPLE_NANOS / est).clamp(1, 1_000_000) as u64;
        let mut total: u128 = 0;
        let mut min = f64::INFINITY;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos();
            total += ns;
            min = min.min(ns as f64 / iters as f64);
        }
        self.measurement = Some(Measurement {
            mean_ns: total as f64 / (self.sample_size as u64 * iters) as f64,
            min_ns: min,
            samples: self.sample_size,
            iters,
        });
    }
}

/// Declares a group-runner function; mirrors `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench `main`; mirrors `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $( $group(&mut c); )+
            c.final_summary(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default();
        {
            let mut g = c.benchmark_group("demo");
            g.sample_size(3);
            g.bench_function("sum", |b| {
                b.iter(|| (0..100u64).sum::<u64>());
            });
            g.bench_with_input(BenchmarkId::from_parameter(42), &42u32, |b, &n| {
                b.iter(|| n * 2);
            });
            g.finish();
        }
        assert_eq!(c.records.len(), 2);
        assert!(c.records[0].mean_ns > 0.0);
        assert_eq!(c.records[1].id, "42");
    }

    #[test]
    fn json_is_well_formed_enough() {
        let mut c = Criterion::default();
        c.records.push(BenchRecord {
            group: "g".into(),
            id: "x/1".into(),
            mean_ns: 12.5,
            min_ns: 10.0,
            samples: 3,
            iters_per_sample: 100,
        });
        let j = c.to_json("bench_demo");
        assert!(j.contains("\"bench\": \"bench_demo\""));
        assert!(j.contains("\"mean_ns\": 12.5"));
    }
}
