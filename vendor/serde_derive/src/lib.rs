//! No-op derive macros backing the vendored `serde` facade.
//!
//! The derives intentionally expand to nothing: the workspace never calls
//! into serde's data model, it only annotates types. Deriving a trait that
//! is then never implemented is fine because no bound anywhere requires it.

use proc_macro::TokenStream;

/// Accepts and discards a `#[derive(Serialize)]` invocation.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts and discards a `#[derive(Deserialize)]` invocation.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
