//! Offline-vendored minimal subset of the `proptest` API.
//!
//! Supports the workspace's usage: the [`proptest!`] macro with an optional
//! `#![proptest_config(...)]` header, range strategies over integers and
//! floats, [`prop::collection::vec`], and the `prop_assert!` /
//! `prop_assert_eq!` assertion macros.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs `cases` deterministic pseudo-random cases (seeded from the
//! test's name), and the first failing case panics with its case index.

use std::fmt;
use std::ops::{Range, RangeInclusive};

pub use rand::rngs::StdRng as TestRng;
use rand::{Rng, SeedableRng};

/// Per-test configuration; mirrors `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a case body.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// A source of random values; mirrors `proptest::strategy::Strategy` minus
/// shrinking.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! numeric_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

numeric_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

/// Strategy produced by [`prop::collection::vec`].
pub struct VecStrategy<S> {
    element: S,
    len: RangeInclusive<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Conversion into a length range for [`prop::collection::vec`].
pub trait IntoSizeRange {
    /// The inclusive length range.
    fn into_size_range(self) -> RangeInclusive<usize>;
}

impl IntoSizeRange for usize {
    fn into_size_range(self) -> RangeInclusive<usize> {
        self..=self
    }
}

impl IntoSizeRange for Range<usize> {
    fn into_size_range(self) -> RangeInclusive<usize> {
        assert!(self.start < self.end, "empty size range");
        self.start..=self.end - 1
    }
}

impl IntoSizeRange for RangeInclusive<usize> {
    fn into_size_range(self) -> RangeInclusive<usize> {
        self
    }
}

/// Strategy combinators namespace; mirrors the parts of `proptest::prop`
/// the workspace uses.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{IntoSizeRange, Strategy, VecStrategy};

        /// Generates `Vec`s whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
            VecStrategy {
                element,
                len: len.into_size_range(),
            }
        }
    }
}

/// Deterministically seeds the runner for one named test.
pub fn runner_rng(test_name: &str) -> TestRng {
    // FNV-1a over the name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    TestRng::seed_from_u64(h)
}

/// Everything a test file needs; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError};
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::runner_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = outcome {
                        panic!("proptest case {}/{} failed: {}", case + 1, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// In-case assertion; mirrors `proptest::prop_assert!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// In-case equality assertion; mirrors `proptest::prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?})",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(l == r) {
            return Err($crate::TestCaseError(format!(
                "assertion failed: {} == {} ({:?} vs {:?}): {}",
                stringify!($lhs),
                stringify!($rhs),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..7, y in -1.0f32..1.0) {
            prop_assert!((3..7).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0u64..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 4);
            prop_assert_eq!(v.iter().filter(|&&x| x >= 10).count(), 0);
        }
    }

    #[test]
    fn config_cases() {
        assert_eq!(ProptestConfig::with_cases(5).cases, 5);
    }
}
