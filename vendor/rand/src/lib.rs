//! Offline-vendored minimal subset of the `rand` 0.8 API.
//!
//! Provides exactly the surface this workspace uses: [`Rng::gen_range`],
//! [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — statistically solid and fully deterministic per seed, but
//! *not* stream-compatible with upstream's ChaCha12-based `StdRng`.

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sampling conveniences layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p}");
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Ranges that can be sampled uniformly; mirrors `rand::distributions`'
/// `SampleRange` just far enough for `gen_range`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! float_sample_range {
    ($($t:ty => $bits:expr, $shift:expr),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty float range");
                // Uniform in [0, 1) with the full mantissa, then affine map.
                let unit = ((rng.next_u64() >> $shift) as $t) * (1.0 / (1u64 << $bits) as $t);
                let v = self.start + (self.end - self.start) * unit;
                // Affine rounding can land exactly on `end`; clamp back in.
                if v >= self.end {
                    <$t>::max(self.start, self.end - (self.end - self.start) * <$t>::EPSILON)
                } else {
                    v
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive float range");
                let unit = ((rng.next_u64() >> $shift) as $t) * (1.0 / ((1u64 << $bits) - 1) as $t);
                lo + (hi - lo) * unit
            }
        }
    )*};
}

float_sample_range!(f32 => 24, 40, f64 => 53, 11);

/// Named generators; mirrors `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Slice sampling helpers; mirrors `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random slice operations.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                // `&mut R` is Sized and implements `Rng` via the blanket
                // impls, satisfying gen_range's `Self: Sized` bound.
                let mut r = &mut *rng;
                let j = Rng::gen_range(&mut r, 0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0.0f32..1.0), b.gen_range(0.0f32..1.0));
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen_range(0..1_000_000), c.gen_range(0..1_000_000));
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(f32::EPSILON..1.0);
            assert!((f32::EPSILON..1.0).contains(&v), "{v}");
            let w: f32 = rng.gen_range(-2.0..=2.0);
            assert!((-2.0..=2.0).contains(&w), "{w}");
        }
    }

    #[test]
    fn int_ranges_cover_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[rng.gen_range(0..3) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }
}
