//! Offline-vendored `serde` facade.
//!
//! The workspace currently only *derives* `Serialize`/`Deserialize` — no code
//! path performs actual serialization — so the traits are empty markers and
//! the derives expand to nothing. If a future PR adds real (de)serialization,
//! replace this facade with the actual crate (see vendor/README.md).

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
