//! Cross-crate integration tests: the complete pipeline from mask
//! generation through rigorous simulation, training, prediction,
//! development and metrology.

use peb_baselines::{DeepCnn, DeepCnnConfig, Fno, FnoConfig};
use peb_data::{augment_with_flips, Dataset, DatasetConfig, LabelStats};
use peb_litho::{Grid, LithoFlow, MaskConfig};
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{
    cd_error_nm, nrmse, LabelTransform, PebPredictor, SdmPeb, SdmPebConfig, TrainConfig, Trainer,
};

/// A shared micro-grid so the suite stays fast.
fn micro_grid() -> Grid {
    Grid::new(16, 16, 4, 8.0, 8.0, 20.0).expect("micro grid")
}

fn micro_dataset() -> Dataset {
    let mut cfg = DatasetConfig::for_grid(micro_grid(), 2, 1);
    cfg.seed = 501;
    Dataset::generate(&cfg).expect("micro dataset")
}

#[test]
fn rigorous_chain_feeds_the_learning_problem() {
    let ds = micro_dataset();
    // Inputs are physical photoacid fields, labels invert to inhibitors.
    for s in ds.train.iter().chain(&ds.test) {
        assert!(s.acid0.min_value() >= 0.0 && s.acid0.max_value() <= 1.0);
        let decoded = LabelTransform::paper().decode(&s.label);
        assert!(decoded.max_abs_diff(&s.inhibitor) < 1e-3);
    }
}

#[test]
fn sdm_peb_trains_end_to_end_on_rigorous_data() {
    let ds = micro_dataset();
    let stats = LabelStats::from_dataset(&ds);
    let pairs: Vec<_> = augment_with_flips(&ds.training_pairs())
        .into_iter()
        .map(|(a, l)| (a, stats.normalize(&l)))
        .collect();
    let mut rng = StdRng::seed_from_u64(0);
    let model = SdmPeb::new(
        SdmPebConfig::tiny((ds.grid.nz, ds.grid.ny, ds.grid.nx)),
        &mut rng,
    );
    let mut cfg = TrainConfig::quick(6);
    cfg.accumulate = 4;
    let report = Trainer::new(cfg).fit(&model, &pairs).expect("training");
    assert!(
        report.final_loss < report.epoch_losses[0],
        "training must reduce the loss: {:?}",
        report.epoch_losses
    );
    // Prediction survives the full decode → develop → metrology chain.
    let flow = LithoFlow::new(ds.grid);
    let sample = &ds.test[0];
    let pred = LabelTransform::paper().decode(&stats.denormalize(&model.predict(&sample.acid0)));
    assert!(pred.min_value() >= 0.0 && pred.max_value() <= 1.0);
    let (_, rate, cds) = flow.develop(&pred, &sample.clip).expect("develop");
    assert_eq!(cds.len(), sample.cds.len());
    assert!(rate.min_value() >= flow.mack.r_min);
    let err = cd_error_nm(&cds, &sample.cds);
    assert!(err.x_nm.is_finite() && err.y_nm.is_finite());
}

#[test]
fn baselines_implement_the_same_interface() {
    let ds = micro_dataset();
    let dims = (ds.grid.nz, ds.grid.ny, ds.grid.nx);
    let mut rng = StdRng::seed_from_u64(1);
    let models: Vec<Box<dyn PebPredictor>> = vec![
        Box::new(DeepCnn::new(
            DeepCnnConfig {
                input_dims: dims,
                width: 6,
                blocks: 1,
            },
            &mut rng,
        )),
        Box::new(Fno::new(
            FnoConfig {
                input_dims: dims,
                width: 4,
                modes: (1, 2, 2),
                layers: 1,
            },
            &mut rng,
        )),
    ];
    for model in &models {
        let pred = model.predict(&ds.test[0].acid0);
        assert_eq!(pred.shape(), &ds.grid.shape3(), "{}", model.name());
        assert!(
            pred.data().iter().all(|v| v.is_finite()),
            "{}",
            model.name()
        );
    }
}

#[test]
fn flip_augmentation_is_physically_consistent() {
    // Flipping a mask and re-simulating equals flipping the simulation of
    // the original mask (up to solver tolerance) — the property that
    // justifies the augmentation.
    let grid = micro_grid();
    let mut flow = LithoFlow::new(grid);
    flow.peb.duration = 10.0; // shorten for test runtime
    let mut mask_cfg = MaskConfig::demo(grid.nx);
    mask_cfg.style = peb_litho::ClipStyle::RegularArray;
    mask_cfg.fill_probability = 1.0;
    let clip = mask_cfg.generate(77).expect("clip");
    let sim = flow.run(&clip).expect("sim");
    // Build the x-flipped clip explicitly.
    let flipped_pattern = clip.pattern.flip_axis(1).expect("flip W axis of [H, W]");
    let mut flipped_clip = clip.clone();
    flipped_clip.pattern = flipped_pattern;
    for c in &mut flipped_clip.contacts {
        c.cx = grid.nx as f32 - 1.0 - c.cx;
    }
    let sim_flipped = flow.run(&flipped_clip).expect("sim flipped");
    let expect = sim.inhibitor.flip_axis(2).expect("flip volume");
    let diff = expect.max_abs_diff(&sim_flipped.inhibitor);
    assert!(diff < 0.05, "flip equivariance violated: {diff}");
}

#[test]
fn ablation_variants_run_through_the_full_pipeline() {
    let ds = micro_dataset();
    let dims = (ds.grid.nz, ds.grid.ny, ds.grid.nx);
    for cfg in [
        SdmPebConfig::tiny(dims).single_stage(),
        SdmPebConfig::tiny(dims).scan_2d(),
    ] {
        let mut rng = StdRng::seed_from_u64(2);
        let model = SdmPeb::new(cfg, &mut rng);
        let pred = model.predict(&ds.test[0].acid0);
        assert_eq!(pred.shape(), &ds.grid.shape3());
    }
}

#[test]
fn trained_model_beats_trivial_predictor() {
    // Even a short training run must beat predicting "mean label
    // everywhere" on the *training* clips (sanity floor for learning).
    let ds = micro_dataset();
    let stats = LabelStats::from_dataset(&ds);
    let pairs: Vec<_> = augment_with_flips(&ds.training_pairs())
        .into_iter()
        .map(|(a, l)| (a, stats.normalize(&l)))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let model = SdmPeb::new(
        SdmPebConfig::tiny((ds.grid.nz, ds.grid.ny, ds.grid.nx)),
        &mut rng,
    );
    let mut cfg = TrainConfig::quick(10);
    cfg.accumulate = 4;
    Trainer::new(cfg).fit(&model, &pairs).expect("training");
    let label = LabelTransform::paper();
    let sample = &ds.train[0];
    let pred = label.decode(&stats.denormalize(&model.predict(&sample.acid0)));
    let trivial = label.decode(&Tensor::full(&ds.grid.shape3(), stats.mean));
    let model_err = nrmse(&pred, &sample.inhibitor);
    let trivial_err = nrmse(&trivial, &sample.inhibitor);
    assert!(
        model_err < trivial_err,
        "model {model_err} should beat trivial {trivial_err}"
    );
}
