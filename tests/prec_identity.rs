//! `PEB_PREC=f32` is a strict no-op: with the default precision the
//! full pipeline — rigorous litho solve plus SDM-PEB forward — must be
//! bitwise identical to a run with the f32 latch set explicitly, at
//! 1 and 4 threads, at every dispatch level this machine has.
//!
//! This pins the tentpole's "default off" contract: threading the
//! precision latch through tensor/nn/mamba/litho must not perturb a
//! single bit of the pre-existing f32 path.

use peb_litho::{Grid, LithoFlow, MaskConfig, PebSolver};
use peb_simd::{Level, Prec};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig};

fn micro_grid() -> Grid {
    Grid::new(16, 16, 4, 8.0, 8.0, 20.0).expect("micro grid")
}

/// One full pipeline pass: mask → optics → Dill → rigorous PEB bake →
/// model forward. Returns the bit digests of the solver state and the
/// prediction.
fn pipeline_digests() -> (u64, u64) {
    let grid = micro_grid();
    let clip = MaskConfig::demo(grid.nx).generate(11).expect("clip");
    let mut flow = LithoFlow::new(grid);
    flow.peb.duration = 4.0;
    let aerial = flow.optics.aerial_image(&grid, &clip).expect("aerial");
    let acid0 = flow.dill.photoacid(&aerial);
    let solver = PebSolver::new(flow.peb, grid, flow.scheme).expect("solver");
    let state = solver.run(&acid0).expect("bake");
    let mut rng = StdRng::seed_from_u64(3);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let pred = model.predict(&acid0);
    (state.inhibitor.bit_digest(), pred.bit_digest())
}

/// The dispatch levels available on this machine: scalar always, plus
/// the detected best level when it differs.
fn levels() -> Vec<Level> {
    let mut ls = vec![Level::Scalar];
    if peb_simd::best_level() != Level::Scalar {
        ls.push(peb_simd::best_level());
    }
    ls
}

#[test]
fn explicit_f32_latch_is_bitwise_identical_across_threads_and_levels() {
    // The dispatch level is process-global, so the whole sweep lives in
    // one test function (mirrors the bench_simd identity sweep).
    for level in levels() {
        peb_simd::set_level(level);
        for threads in [1usize, 4] {
            let (baseline_state, baseline_pred) =
                peb_par::with_thread_count(threads, pipeline_digests);
            let (latched_state, latched_pred) = peb_par::with_thread_count(threads, || {
                peb_simd::with_prec(Prec::F32, pipeline_digests)
            });
            assert_eq!(
                baseline_state,
                latched_state,
                "solver state diverged under an explicit f32 latch \
                 (level {}, {threads} threads)",
                level.name()
            );
            assert_eq!(
                baseline_pred,
                latched_pred,
                "prediction diverged under an explicit f32 latch \
                 (level {}, {threads} threads)",
                level.name()
            );
        }
    }
    peb_simd::set_level(peb_simd::best_level());
}

#[test]
fn f32_pipeline_is_thread_count_invariant_with_the_latch_set() {
    // 1-vs-4-thread bitwise identity was already pinned for the default
    // path; this keeps it true inside a `with_prec(F32)` scope.
    peb_simd::set_level(peb_simd::best_level());
    let one = peb_par::with_thread_count(1, || peb_simd::with_prec(Prec::F32, pipeline_digests));
    let four = peb_par::with_thread_count(4, || peb_simd::with_prec(Prec::F32, pipeline_digests));
    assert_eq!(
        one, four,
        "f32-latched pipeline must not depend on PEB_THREADS"
    );
}

#[test]
fn reduced_precision_scopes_restore_the_f32_baseline() {
    // Running bf16/int8 scopes in between must not leak into later f32
    // work — the drop-guard restore is part of the no-op contract.
    peb_simd::set_level(peb_simd::best_level());
    let before = pipeline_digests();
    let _ = peb_simd::with_prec(Prec::Bf16, pipeline_digests);
    let _ = peb_simd::with_prec(Prec::Int8, pipeline_digests);
    let after = pipeline_digests();
    assert_eq!(
        before, after,
        "a completed reduced-precision scope must leave the f32 path untouched"
    );
}
