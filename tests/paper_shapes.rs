//! Structural "paper shape" tests: cheap invariants that mirror the
//! qualitative claims of the evaluation section without running full
//! training (those live in the `peb-bench` binaries).

use peb_bench::{build_model, ModelKind, PAPER_TABLE2, PAPER_TABLE3};
use peb_data::{value_histogram, Dataset, DatasetConfig};
use peb_litho::Grid;
use peb_tensor::Tensor;
use std::time::Instant;

fn dims() -> (usize, usize, usize) {
    (4, 16, 16)
}

#[test]
fn all_nine_table_rows_construct_and_predict() {
    let acid = Tensor::full(&[4, 16, 16], 0.3);
    for kind in ModelKind::TABLE2.iter().chain(ModelKind::TABLE3.iter()) {
        let model = build_model(*kind, dims());
        let pred = model.predict(&acid);
        assert_eq!(pred.shape(), &[4, 16, 16], "{}", kind.label());
    }
}

#[test]
fn ablations_shrink_the_model_as_the_paper_describes() {
    let full = build_model(ModelKind::SdmPeb, dims());
    let single = build_model(ModelKind::SdmPebSingleStage, dims());
    let scan2d = build_model(ModelKind::SdmPeb2dScan, dims());
    assert!(single.parameter_count() < full.parameter_count());
    assert!(scan2d.parameter_count() < full.parameter_count());
    // Loss-only ablations keep the architecture.
    let no_focal = build_model(ModelKind::SdmPebNoFocal, dims());
    assert_eq!(no_focal.parameter_count(), full.parameter_count());
}

#[test]
fn loss_ablation_kinds_toggle_the_right_terms() {
    assert!(!ModelKind::SdmPebNoFocal.loss().use_focal);
    assert!(ModelKind::SdmPebNoFocal.loss().use_divergence);
    assert!(!ModelKind::SdmPebNoRegularization.loss().use_divergence);
    assert!(ModelKind::SdmPebNoRegularization.loss().use_focal);
    assert!(ModelKind::SdmPeb.loss().use_focal);
}

#[test]
fn fig6_imbalance_shape_holds_on_generated_data() {
    // The paper's Fig. 6: photoacid spreads widely; inhibitor bins span
    // orders of magnitude with mass concentrated at the protected end.
    let mut grid = Grid::small();
    grid.nz = 4;
    let mut cfg = DatasetConfig::for_grid(grid, 2, 0);
    cfg.seed = 11;
    let ds = Dataset::generate(&cfg).expect("dataset");
    let inhibitor = value_histogram(ds.train.iter().map(|s| &s.inhibitor));
    let top_bin = inhibitor[9];
    let min_nonzero = inhibitor
        .iter()
        .copied()
        .filter(|f| *f > 0.0)
        .fold(f64::INFINITY, f64::min);
    // At this micro scale (dense demo contacts) the spread is smaller
    // than the paper's orders of magnitude, but the shape — protected
    // bins dominating the rarest mid-range bin — must hold.
    assert!(
        top_bin / min_nonzero > 5.0,
        "inhibitor imbalance too small: {inhibitor:?}"
    );
    // Most mass sits in the protected (rightmost) bins.
    assert!(inhibitor[8] + inhibitor[9] > 0.4, "{inhibitor:?}");
}

#[test]
fn learned_models_are_far_faster_than_the_rigorous_solver() {
    // The §IV runtime claim at micro scale: a forward pass beats a
    // rigorous bake by a large factor.
    let mut grid = Grid::small();
    grid.nz = 4;
    let mut cfg = DatasetConfig::for_grid(grid, 1, 0);
    cfg.seed = 21;
    let ds = Dataset::generate(&cfg).expect("dataset");
    let rigorous = ds.train[0].rigorous_peb_time;
    let model = build_model(ModelKind::SdmPeb, (grid.nz, grid.ny, grid.nx));
    let _ = model.predict(&ds.train[0].acid0); // warm up
    let t = Instant::now();
    let _ = model.predict(&ds.train[0].acid0);
    let inference = t.elapsed();
    assert!(
        rigorous > inference * 3,
        "expected a clear speedup: rigorous {rigorous:?} vs inference {inference:?}"
    );
}

#[test]
fn paper_reference_tables_encode_the_papers_ordering() {
    // Guards against typos in the transcribed constants.
    assert_eq!(PAPER_TABLE2.len(), 5);
    assert_eq!(PAPER_TABLE3.len(), 5);
    assert_eq!(PAPER_TABLE2[4].0, "SDM-PEB");
    // 138× claim: 147 s / 1.06 s.
    let speedup = 147.0 / PAPER_TABLE2[4].7;
    assert!((speedup - 138.0).abs() < 2.0);
    // TEMPO-resist is the slowest learned model in the paper.
    let tempo_rt = PAPER_TABLE2[1].7;
    assert!(PAPER_TABLE2.iter().all(|r| r.7 <= tempo_rt));
}
