//! Execution plans must be invisible in the output: `Plan::replay` is
//! bitwise identical to the eager path at every dispatch level this
//! machine has, at 1 and 4 threads, in f32, bf16 and int8. A serving
//! hot-swap must invalidate the plan cache so the *new* model's bits
//! are served, and static memory planning must never assign two
//! simultaneously-live buffers to the same arena region for any valid
//! clip geometry.
//!
//! The PEB_PLAN / dispatch-level / thread-count latches are process
//! global, so every test in this binary serialises on one mutex.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Mutex;

use peb_guard::{OptKind, TrainCheckpoint};
use peb_nn::Parameterized;
use peb_pool::arena::{Event, MemPlan, Placement};
use peb_serve::{Client, ServeConfig, Server};
use peb_simd::{Level, Prec};
use peb_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sdm_peb::{InferPlan, PebPredictor, SdmPeb, SdmPebConfig};

fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The dispatch levels available on this machine: scalar always, plus
/// the detected best level when it differs.
fn levels() -> Vec<Level> {
    let mut ls = vec![Level::Scalar];
    if peb_simd::best_level() != Level::Scalar {
        ls.push(peb_simd::best_level());
    }
    ls
}

fn model_and_clip(dims: (usize, usize, usize), seed: u64) -> (SdmPeb, Tensor) {
    let mut rng = StdRng::seed_from_u64(seed);
    let model = SdmPeb::new(SdmPebConfig::tiny(dims), &mut rng);
    let clip = Tensor::rand_uniform(&[dims.0, dims.1, dims.2], 0.05, 0.9, &mut rng);
    (model, clip)
}

#[test]
fn replay_is_bitwise_identical_across_levels_threads_and_precisions() {
    let _l = lock();
    peb_pool::set_enabled(true);
    peb_plan::set_enabled(true);
    let (model, clip) = model_and_clip((4, 16, 16), 21);
    for level in levels() {
        peb_simd::set_level(level);
        for threads in [1usize, 4] {
            for prec in [Prec::F32, Prec::Bf16, Prec::Int8] {
                peb_par::with_thread_count(threads, || {
                    peb_simd::with_prec(prec, || {
                        let eager = model.predict(&clip).bit_digest();
                        let (plan, recorded) = InferPlan::record(&model, &clip);
                        assert_eq!(
                            recorded.bit_digest(),
                            eager,
                            "recording run diverged from eager \
                             (level {}, {threads} threads, {prec:?})",
                            level.name()
                        );
                        for rep in 0..2 {
                            let (out, outcome) = plan.predict(&model, &clip);
                            assert!(
                                outcome.complete,
                                "replay {rep} incomplete (level {}, {threads} threads, \
                                 {prec:?}): {outcome:?}",
                                level.name()
                            );
                            assert!(outcome.served > 0, "arena must serve intermediates");
                            assert_eq!(
                                out.bit_digest(),
                                eager,
                                "replay {rep} diverged from eager \
                                 (level {}, {threads} threads, {prec:?})",
                                level.name()
                            );
                        }
                    })
                });
            }
        }
    }
    peb_simd::set_level(peb_simd::best_level());
}

const GRID: (usize, usize, usize) = (4, 16, 16);

fn serve_clip() -> Tensor {
    let (d, h, w) = GRID;
    Tensor::from_vec(
        (0..d * h * w)
            .map(|i| (i as f32 * 0.013).sin() * 0.3 + 0.5)
            .collect(),
        &[d, h, w],
    )
    .expect("clip")
}

/// Saves a checkpoint whose weights come from a differently-seeded
/// model and returns its path plus that model's prediction digest.
fn write_swap_checkpoint() -> (PathBuf, u64) {
    let model = SdmPeb::new(SdmPebConfig::tiny(GRID), &mut StdRng::seed_from_u64(999));
    let params: Vec<Tensor> = model.parameters().iter().map(|p| p.value_clone()).collect();
    let n = params.len();
    let ckpt = TrainCheckpoint {
        epoch: 3,
        seed: 999,
        opt_kind: OptKind::Adam,
        opt_t: 0,
        lr_scale: 1.0,
        rollbacks: 0,
        epoch_stats: vec![],
        params,
        opt_m: vec![None; n],
        opt_v: vec![None; n],
        quant: None,
    };
    let path = std::env::temp_dir().join(format!("peb_plan_swap_{}.ckpt", std::process::id()));
    ckpt.save(&path).expect("save checkpoint");
    (path, model.predict(&serve_clip()).bit_digest())
}

#[test]
fn hot_swap_invalidates_plans_and_serves_the_new_model() {
    let _l = lock();
    peb_plan::set_enabled(true);
    let (path, swapped_digest) = write_swap_checkpoint();
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        grid: GRID,
        max_batch: 4,
        max_wait_us: 200,
        queue_cap: 32,
        conn_workers: 2,
        ..ServeConfig::default()
    })
    .expect("start");
    let mut client = Client::connect(server.addr()).expect("connect");

    // First request records a plan (miss); the repeat replays it (hit).
    let base = client.infer(&serve_clip()).expect("infer").bit_digest();
    let again = client.infer(&serve_clip()).expect("infer").bit_digest();
    assert_eq!(base, again, "plan replay changed served bits");
    assert_ne!(base, swapped_digest, "seeds must give distinct models");
    let stats = server.handle().stats();
    assert!(stats.plan_misses.load(Ordering::Relaxed) >= 1);
    assert!(stats.plan_hits.load(Ordering::Relaxed) >= 1);
    assert!(stats.arena_hwm_bytes.load(Ordering::Relaxed) > 0);

    client
        .swap(path.to_str().expect("utf8 path"))
        .expect("swap");
    assert!(
        stats.plan_invalidations.load(Ordering::Relaxed) >= 1,
        "hot-swap must drop cached plans"
    );

    // Post-swap inference must carry the *new* model's bits — a stale
    // plan would still replay correctly, but the cache counts it as a
    // fresh recording against the swapped weights.
    let after = client.infer(&serve_clip()).expect("infer").bit_digest();
    assert_eq!(
        after, swapped_digest,
        "post-swap prediction must match the checkpointed weights bitwise"
    );
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Records a real `predict` at the given geometry and checks the static
/// memory plan against the recorded event stream: at no point may two
/// live checkouts occupy the same arena region.
fn assert_no_live_aliasing(dims: (usize, usize, usize), seed: u64) -> Result<(), TestCaseError> {
    let (model, clip) = model_and_clip(dims, seed);
    let _warm = model.predict(&clip);
    peb_pool::arena::begin_record();
    let _out = model.predict(&clip);
    let trace = peb_pool::arena::end_record();
    let plan = MemPlan::from_trace(&trace);

    let mut occupied: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    let mut placement_of: Vec<Option<u32>> = vec![None; plan.allocs.len()];
    let mut next = 0u32;
    for ev in &trace.events {
        match ev {
            Event::Alloc(_) => {
                let id = next;
                next += 1;
                let (_, placement) = plan.allocs[id as usize];
                if let Placement::Region(r) = placement {
                    if let Some(&other) = occupied.get(&r) {
                        prop_assert!(
                            false,
                            "allocs {other} and {id} live in region {r} simultaneously \
                             (dims {dims:?}, seed {seed})"
                        );
                    }
                    occupied.insert(r, id);
                    placement_of[id as usize] = Some(r);
                }
            }
            Event::Free { alloc } => {
                if let Some(r) = placement_of[*alloc as usize] {
                    occupied.remove(&r);
                }
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Random valid clip geometries never alias two live buffers.
    #[test]
    fn random_clip_shapes_never_alias_two_live_buffers(seed in 0u64..1_000_000) {
        let _l = lock();
        peb_pool::set_enabled(true);
        let mut rng = StdRng::seed_from_u64(seed);
        let dims = (
            rng.gen_range(2..=4usize),
            4 * rng.gen_range(2..=5usize),
            4 * rng.gen_range(2..=5usize),
        );
        assert_no_live_aliasing(dims, seed)?;
    }
}
