//! End-to-end exercise of the `peb-obs` observability layer.
//!
//! One test function drives the full pipeline — rigorous litho flow plus
//! a micro training run — under JSON tracing and asserts that (a) every
//! instrumented subsystem shows up in the profile with non-zero spans and
//! counters, (b) tracing does not perturb numerics (bitwise-identical
//! model output with tracing on and off), and (c) the emitted trace file
//! is well-formed JSON with the chrome://tracing keys.
//!
//! A single `#[test]` keeps the global trace mode race-free without
//! locking; the mode is restored to `Off` before returning so the
//! process-exit hook does not write a stray trace file.

use peb_litho::{Grid, LithoFlow, MaskConfig};
use peb_obs::TraceMode;
use peb_tensor::Tensor;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sdm_peb::{PebPredictor, SdmPeb, SdmPebConfig, TrainConfig, Trainer};

#[test]
fn tracing_profiles_the_pipeline_without_perturbing_it() {
    peb_obs::set_mode(TraceMode::Off);
    let grid = Grid::new(16, 16, 4, 8.0, 8.0, 20.0).unwrap();
    let clip = MaskConfig::demo(grid.nx).generate(42).unwrap();
    let mut flow = LithoFlow::new(grid);
    flow.peb.duration = 10.0; // shorten the bake for test runtime
    let mut rng = StdRng::seed_from_u64(7);
    let model = SdmPeb::new(SdmPebConfig::tiny((grid.nz, grid.ny, grid.nx)), &mut rng);
    let probe = Tensor::rand_uniform(&grid.shape3(), 0.0, 1.0, &mut rng);

    // Baseline with tracing fully off.
    let baseline = model.predict(&probe);

    // Same pipeline under JSON tracing. The prediction is repeated
    // first, before training mutates the weights.
    peb_obs::reset();
    peb_obs::set_mode(TraceMode::Json);
    let traced = model.predict(&probe);
    let sim = flow.run(&clip).expect("litho flow");
    assert!(sim.inhibitor.min_value() >= 0.0);
    let pairs = vec![(sim.acid0.clone(), sim.inhibitor.clone())];
    let mut cfg = TrainConfig::quick(2);
    cfg.accumulate = 1;
    let report = Trainer::new(cfg).fit(&model, &pairs).expect("training");
    assert!(report.final_loss.is_finite());

    // Tracing must be an observer only: bitwise-identical prediction.
    assert_eq!(baseline.shape(), traced.shape());
    for (i, (a, b)) in baseline.data().iter().zip(traced.data()).enumerate() {
        assert_eq!(
            a.to_bits(),
            b.to_bits(),
            "tracing changed prediction at flat index {i}: {a} vs {b}"
        );
    }

    // Every instrumented subsystem must have fired.
    let profile = peb_obs::snapshot();
    for needle in [
        "gemm", "conv", "scan", "adi", "fft", "litho", "train", "optim",
    ] {
        assert!(
            profile.span_count(needle) > 0,
            "no spans matching {needle:?} in {:?}",
            profile.spans.iter().map(|s| &s.path).collect::<Vec<_>>()
        );
    }
    for counter in [
        "gemm_flops",
        "im2col_bytes",
        "fft_lines",
        "adi_tridiag_solves",
        "scan_lanes",
        "eikonal_sweeps",
        "tensor_allocs",
        "optimizer_steps",
    ] {
        assert!(profile.counter(counter) > 0, "counter {counter} is zero");
    }

    // The JSON report must be well-formed and carry the tracing keys.
    let path = std::env::temp_dir().join("peb_obs_integration_trace.json");
    let path = path.to_str().expect("utf-8 temp path");
    peb_obs::write_json(path).expect("write trace");
    let text = std::fs::read_to_string(path).expect("read trace back");
    std::fs::remove_file(path).ok();
    let mut parser = Json::new(&text);
    parser.value();
    parser.finish();
    for key in ["\"traceEvents\"", "\"counters\"", "\"spans\"", "\"ph\""] {
        assert!(text.contains(key), "trace JSON lacks {key}");
    }

    peb_obs::set_mode(TraceMode::Off);
    peb_obs::reset();
}

/// Minimal validating JSON parser (no serde_json in the dependency
/// tree). Panics with a byte offset on malformed input; values are
/// checked, not built.
struct Json<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Json<'a> {
    fn new(text: &'a str) -> Self {
        Json {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn finish(&mut self) {
        self.skip_ws();
        assert!(
            self.pos == self.bytes.len(),
            "trailing bytes at offset {}",
            self.pos
        );
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        assert!(self.pos < self.bytes.len(), "unexpected end of JSON");
        self.bytes[self.pos]
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) {
        let got = self.peek();
        assert_eq!(
            got as char, b as char,
            "expected {:?} at offset {}",
            b as char, self.pos
        );
        self.pos += 1;
    }

    fn value(&mut self) {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string(),
            b't' => self.literal("true"),
            b'f' => self.literal("false"),
            b'n' => self.literal("null"),
            _ => self.number(),
        }
    }

    fn object(&mut self) {
        self.expect(b'{');
        if self.peek() == b'}' {
            self.pos += 1;
            return;
        }
        loop {
            self.string();
            self.expect(b':');
            self.value();
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return;
                }
                c => panic!(
                    "expected ',' or '}}' at offset {}, got {:?}",
                    self.pos, c as char
                ),
            }
        }
    }

    fn array(&mut self) {
        self.expect(b'[');
        if self.peek() == b']' {
            self.pos += 1;
            return;
        }
        loop {
            self.value();
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return;
                }
                c => panic!(
                    "expected ',' or ']' at offset {}, got {:?}",
                    self.pos, c as char
                ),
            }
        }
    }

    fn string(&mut self) {
        self.expect(b'"');
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return;
                }
                b'\\' => self.pos += 2,
                c => {
                    assert!(c >= 0x20, "raw control byte in string at {}", self.pos);
                    self.pos += 1;
                }
            }
        }
        panic!("unterminated string");
    }

    fn literal(&mut self, lit: &str) {
        assert!(
            self.bytes[self.pos..].starts_with(lit.as_bytes()),
            "bad literal at offset {}",
            self.pos
        );
        self.pos += lit.len();
    }

    fn number(&mut self) {
        let start = self.pos;
        if self.peek() == b'-' {
            self.pos += 1;
        }
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-'
            )
        {
            self.pos += 1;
        }
        assert!(self.pos > start, "expected a number at offset {start}");
    }
}
